//! The daemon: accept loop, executor pool, and the drain lifecycle.
//!
//! ## Lifecycle states
//!
//! ```text
//! recover → serving → draining → (drained | aborted)
//! ```
//!
//! * **recover** — before accepting anything, the backend finishes any
//!   journaled in-flight work a previous daemon left behind.
//! * **serving** — connections are accepted; every `Submit` passes the
//!   admission queue (shed with `Overloaded` when full).
//! * **draining** — entered on SIGINT/SIGTERM, a client `Drain` frame, or
//!   an expired serve deadline: admissions stop (`Draining` replies),
//!   admitted work finishes and is journaled, then connections close.
//! * **aborted** — a *second* signal during the drain: the backlog is
//!   dumped (owners get `Failed` frames), in-flight work is cancelled at
//!   its next cell boundary, and the exit is marked interrupted.
//!
//! The server is transport + lifecycle only; work happens behind
//! [`Backend`]. Executors run detached threads coordinated through the
//! queue's counters, so `run_unix`/`run_stdio` return exactly when the
//! drain completes.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mps_journal::{signal_count, CancelToken, RunControl};

use crate::proto::{
    recv_msg, send_msg, ClientFrame, ServerFrame, ServerStats, WorkRequest, WorkSummary,
    PROTO_VERSION,
};
use crate::queue::{Admission, AdmissionQueue};
use crate::ServeError;

/// The work-execution seam. `mps-exp` implements this against the real
/// harness; tests implement it with toys.
pub trait Backend: Send + Sync {
    /// Executes one request, calling `emit(key, payload_json)` for every
    /// completed cell (payloads must be the verbatim journaled bytes so
    /// replays are byte-identical). `emit` returning `false` means the
    /// client is gone: stop *sending*, keep journaling. `ctrl` carries
    /// the request deadline and the server's abort token; implementations
    /// poll it between cells and stop early with a checkpointed journal.
    fn execute(
        &self,
        work: &WorkRequest,
        ctrl: &RunControl,
        emit: &mut dyn FnMut(&str, &str) -> bool,
    ) -> Result<WorkSummary, ServeError>;

    /// Startup crash recovery: finish journaled in-flight work a crashed
    /// daemon left behind. Returns how many requests were recovered.
    fn recover(&self) -> Result<u64, ServeError> {
        Ok(0)
    }
}

/// Daemon policy knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Free-form server identification sent in `HelloAck`.
    pub server: String,
    /// Admission queue capacity (waiting requests; ≥ 1).
    pub queue_capacity: usize,
    /// Executor threads (concurrent requests; ≥ 1).
    pub executors: usize,
    /// The serve-loop control: its cancel token (typically
    /// [`CancelToken::following_signals`]) or deadline triggers the
    /// drain; its throttle paces executors between cells (test kill
    /// windows).
    pub ctrl: RunControl,
    /// Per-connection read deadline: a connection whose peer sends no
    /// frame for this long is reaped with a typed
    /// [`ServeError::ClientStalled`] (results already admitted keep
    /// journaling — only the *stream* dies). `None` waits forever.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            server: "mps-serve".to_string(),
            queue_capacity: 16,
            executors: 2,
            ctrl: RunControl::unlimited(),
            read_timeout: None,
        }
    }
}

/// How a daemon run ended; the CLI maps this to the exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerExit {
    /// Requests completed.
    pub served: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Cells quarantined across all requests.
    pub quarantined: u64,
    /// Requests finished by startup crash recovery.
    pub recovered: u64,
    /// True when a second signal aborted the drain.
    pub interrupted: bool,
}

/// A connection's write half, shared between its reader thread and the
/// executors streaming results back.
pub type Reply = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted request.
struct Job {
    id: u64,
    work: WorkRequest,
    deadline_ms: Option<u64>,
    reply: Reply,
}

/// The daemon. Construct with [`Server::new`], then [`Server::run_unix`]
/// or [`Server::run_stdio`].
pub struct Server {
    backend: Arc<dyn Backend>,
    cfg: ServerConfig,
    queue: AdmissionQueue<Job>,
    quarantined: AtomicU64,
    disturbed: AtomicU64,
    rescues: AtomicU64,
    recovered: AtomicU64,
    stalled: AtomicU64,
    /// Set by a client `Drain` frame.
    drain_req: CancelToken,
    /// Cancels in-flight work when a second signal aborts the drain.
    abort: CancelToken,
    #[cfg(unix)]
    conns: Mutex<Vec<std::os::unix::net::UnixStream>>,
}

fn send(reply: &Reply, frame: &ServerFrame) -> Result<(), ServeError> {
    let mut w = reply.lock().unwrap();
    send_msg(&mut **w, frame)
}

/// Read wrapper that remembers whether the last failure was a read
/// deadline expiring (`WouldBlock`/`TimedOut`), so the protocol loop can
/// distinguish a *stalled* client from a torn frame: the transport error
/// kinds are erased by the frame layer's stringified errors.
struct StallGuard<'a> {
    inner: &'a mut dyn Read,
    stalled: bool,
}

impl Read for StallGuard<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.inner.read(buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                self.stalled = true;
                Err(e)
            }
            r => r,
        }
    }
}

impl Server {
    /// Builds a daemon over `backend`.
    pub fn new(backend: Arc<dyn Backend>, cfg: ServerConfig) -> Arc<Self> {
        let queue = AdmissionQueue::new(cfg.queue_capacity);
        Arc::new(Server {
            backend,
            cfg,
            queue,
            quarantined: AtomicU64::new(0),
            disturbed: AtomicU64::new(0),
            rescues: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            drain_req: CancelToken::new(),
            abort: CancelToken::new(),
            #[cfg(unix)]
            conns: Mutex::new(Vec::new()),
        })
    }

    /// Current statistics (the `Health` reply).
    pub fn stats(&self) -> ServerStats {
        let q = self.queue.stats();
        ServerStats {
            queue_depth: q.depth,
            queue_capacity: q.capacity,
            inflight: q.inflight,
            served: q.served,
            shed: q.shed,
            quarantined: self.quarantined.load(Ordering::SeqCst),
            recovered: self.recovered.load(Ordering::SeqCst),
            stalled: self.stalled.load(Ordering::SeqCst),
            disturbed: self.disturbed.load(Ordering::SeqCst),
            rescues: self.rescues.load(Ordering::SeqCst),
            p50_service_ms: q.p50_service_ms.round() as u64,
            p99_service_ms: q.p99_service_ms.round() as u64,
            draining: q.draining,
        }
    }

    fn should_drain(&self) -> bool {
        self.cfg.ctrl.should_stop().is_some() || self.drain_req.is_cancelled()
    }

    fn spawn_executors(self: &Arc<Self>) {
        for _ in 0..self.cfg.executors.max(1) {
            let me = Arc::clone(self);
            std::thread::spawn(move || me.executor_loop());
        }
    }

    fn executor_loop(self: Arc<Self>) {
        while let Some(job) = self.queue.next() {
            let started = Instant::now();
            // Admitted work survives the *graceful* drain (the whole
            // point of draining) but follows the abort token; the
            // request's own deadline rides along, and the configured
            // throttle paces cell boundaries for test kill windows.
            let mut ctrl = RunControl::unlimited().with_cancel(self.abort.clone());
            ctrl.throttle = self.cfg.ctrl.throttle;
            if let Some(ms) = job.deadline_ms {
                ctrl.deadline = Some(started + Duration::from_millis(ms));
            }
            let Job {
                id, work, reply, ..
            } = job;
            let mut alive = true;
            let mut emit = |key: &str, payload: &str| {
                if alive {
                    let frame = ServerFrame::Cell {
                        id,
                        key: key.to_string(),
                        payload: payload.to_string(),
                    };
                    // A dead client stops the *stream*, never the work:
                    // the backend keeps journaling so the result is
                    // replayable.
                    alive = send(&reply, &frame).is_ok();
                }
                alive
            };
            let result = self.backend.execute(&work, &ctrl, &mut emit);
            let frame = match result {
                Ok(summary) => {
                    self.quarantined
                        .fetch_add(summary.quarantined, Ordering::SeqCst);
                    self.disturbed
                        .fetch_add(summary.disturbed, Ordering::SeqCst);
                    self.rescues.fetch_add(summary.rescues, Ordering::SeqCst);
                    ServerFrame::Done { id, summary }
                }
                Err(e) => ServerFrame::Failed {
                    id,
                    error: e.to_string(),
                },
            };
            let _ = send(&reply, &frame);
            self.queue.finish(started.elapsed().as_millis() as u64);
        }
    }

    /// Classifies a failed/odd `recv_msg` outcome: a read that timed out
    /// is a stalled client (counted and typed); everything else keeps its
    /// original error.
    fn classify_recv(
        &self,
        guard_stalled: bool,
        err: Option<ServeError>,
    ) -> Result<(), ServeError> {
        if guard_stalled {
            self.stalled.fetch_add(1, Ordering::SeqCst);
            return Err(ServeError::ClientStalled {
                timeout_ms: self.cfg.read_timeout.map_or(0, |d| d.as_millis() as u64),
            });
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs one connection's protocol loop: handshake, then frames until
    /// EOF/`Bye`/violation. Public so tests can drive a server over any
    /// in-process transport.
    ///
    /// The return value is diagnostic: `Ok` for a clean end (EOF or
    /// `Bye`), a typed [`ServeError`] otherwise — notably
    /// [`ServeError::ClientStalled`] when the transport's read deadline
    /// expired with no frame ([`ServerConfig::read_timeout`]). The
    /// connection is closed by the caller either way.
    pub fn serve_connection(
        self: &Arc<Self>,
        reader: &mut dyn Read,
        reply: &Reply,
    ) -> Result<(), ServeError> {
        let mut guard = StallGuard {
            inner: reader,
            stalled: false,
        };
        // Handshake first; anything else is a violation and closes the
        // connection.
        match recv_msg::<_, ClientFrame>(&mut guard) {
            Ok(Some(ClientFrame::Hello { proto, .. })) => {
                if proto != PROTO_VERSION {
                    let _ = send(
                        reply,
                        &ServerFrame::VersionMismatch {
                            want: PROTO_VERSION.to_string(),
                            got: proto.clone(),
                        },
                    );
                    return Err(ServeError::VersionMismatch {
                        ours: PROTO_VERSION.to_string(),
                        theirs: proto,
                    });
                }
                let _ = send(
                    reply,
                    &ServerFrame::HelloAck {
                        proto: PROTO_VERSION.to_string(),
                        server: self.cfg.server.clone(),
                        queue_capacity: self.cfg.queue_capacity as u64,
                    },
                );
            }
            Ok(Some(_)) => {
                return Err(ServeError::Protocol {
                    reason: "first frame must be Hello".to_string(),
                })
            }
            Ok(None) => return Ok(()),
            Err(e) => return self.classify_recv(guard.stalled, Some(e)),
        }
        loop {
            match recv_msg::<_, ClientFrame>(&mut guard) {
                Ok(Some(ClientFrame::Submit {
                    id,
                    work,
                    deadline_ms,
                })) => {
                    let job = Job {
                        id,
                        work,
                        deadline_ms,
                        reply: Arc::clone(reply),
                    };
                    // Hold the write half across admit + ack so the
                    // admission reply always precedes the first `Cell`
                    // frame an executor might race to send.
                    let mut w = reply.lock().unwrap();
                    let verdict = self.queue.try_admit(job);
                    let ack = match verdict {
                        Admission::Admitted => ServerFrame::Accepted { id },
                        Admission::Shed { retry_after_ms } => {
                            ServerFrame::Overloaded { id, retry_after_ms }
                        }
                        Admission::Draining => ServerFrame::Draining { id },
                    };
                    send_msg(&mut **w, &ack)?;
                }
                Ok(Some(ClientFrame::Health { id })) => {
                    send(
                        reply,
                        &ServerFrame::Stats {
                            id,
                            stats: self.stats(),
                        },
                    )?;
                }
                Ok(Some(ClientFrame::Drain { id })) => {
                    // Stop admissions synchronously — once the ack is on
                    // the wire, no later Submit can slip in — then nudge
                    // the accept loop to begin the shutdown.
                    self.queue.start_drain();
                    self.drain_req.cancel();
                    let _ = send(reply, &ServerFrame::DrainStarted { id });
                }
                // A duplicate handshake violates the protocol.
                Ok(Some(ClientFrame::Hello { .. })) => {
                    return Err(ServeError::Protocol {
                        reason: "duplicate Hello".to_string(),
                    })
                }
                Ok(Some(ClientFrame::Bye)) | Ok(None) => return Ok(()),
                Err(e) => return self.classify_recv(guard.stalled, Some(e)),
            }
        }
    }

    /// The drain: stop admissions, let admitted work finish, escalate to
    /// an abort if another signal lands. Returns `interrupted`.
    fn drain_and_wait(&self) -> bool {
        self.queue.start_drain();
        let at_drain = signal_count();
        let mut interrupted = false;
        while !self.queue.drained() {
            if !interrupted && signal_count() > at_drain {
                interrupted = true;
                self.abort.cancel();
                for job in self.queue.abort() {
                    let _ = send(
                        &job.reply,
                        &ServerFrame::Failed {
                            id: job.id,
                            error: "server aborted during drain".to_string(),
                        },
                    );
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        interrupted
    }

    fn exit(&self, interrupted: bool) -> ServerExit {
        let q = self.queue.stats();
        ServerExit {
            served: q.served,
            shed: q.shed,
            quarantined: self.quarantined.load(Ordering::SeqCst),
            recovered: self.recovered.load(Ordering::SeqCst),
            interrupted,
        }
    }

    fn recover_startup(&self) -> Result<(), ServeError> {
        let n = self.backend.recover()?;
        self.recovered.store(n, Ordering::SeqCst);
        Ok(())
    }

    /// Serves connections on a Unix-domain socket until a drain trigger
    /// fires, then drains and returns. A stale socket file (from a
    /// crashed daemon) is replaced; the socket is removed on exit.
    #[cfg(unix)]
    pub fn run_unix(self: &Arc<Self>, socket: &std::path::Path) -> Result<ServerExit, ServeError> {
        use std::os::unix::net::UnixListener;

        self.recover_startup()?;
        if socket.exists() {
            std::fs::remove_file(socket).map_err(|e| ServeError::io("unlink-socket", e))?;
        }
        let listener = UnixListener::bind(socket).map_err(|e| ServeError::io("bind", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::io("bind", e))?;
        self.spawn_executors();

        loop {
            if self.should_drain() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let res: std::io::Result<()> = (|| {
                        stream.set_nonblocking(false)?;
                        // A peer that stops sending must not pin this
                        // reader thread forever: the deadline turns the
                        // silence into a typed ClientStalled reap.
                        stream.set_read_timeout(self.cfg.read_timeout)?;
                        // One clone to force-close at drain end (unblocks
                        // the reader thread), one as the write half.
                        self.conns.lock().unwrap().push(stream.try_clone()?);
                        let writer = stream.try_clone()?;
                        let reply: Reply = Arc::new(Mutex::new(Box::new(writer)));
                        let me = Arc::clone(self);
                        std::thread::spawn(move || {
                            let mut reader = stream;
                            let _ = me.serve_connection(&mut reader, &reply);
                            // The protocol loop is over (Bye, EOF, stall,
                            // or a violation): shut the socket down so the
                            // peer sees EOF even though `conns` and the
                            // write half still hold fd clones.
                            let _ = reader.shutdown(std::net::Shutdown::Both);
                        });
                        Ok(())
                    })();
                    if res.is_err() {
                        continue;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ServeError::io("accept", e)),
            }
        }

        let interrupted = self.drain_and_wait();
        for c in self.conns.lock().unwrap().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        let _ = std::fs::remove_file(socket);
        Ok(self.exit(interrupted))
    }

    /// Serves a single connection over stdin/stdout (test harnesses, no
    /// socket management). Drains on stdin EOF, a `Drain` frame, or the
    /// configured control.
    pub fn run_stdio(self: &Arc<Self>) -> Result<ServerExit, ServeError> {
        self.recover_startup()?;
        self.spawn_executors();
        let reply: Reply = Arc::new(Mutex::new(Box::new(std::io::stdout())));
        let eof = Arc::new(AtomicBool::new(false));
        {
            let me = Arc::clone(self);
            let eof = Arc::clone(&eof);
            std::thread::spawn(move || {
                let stdin = std::io::stdin();
                let mut reader = stdin.lock();
                let _ = me.serve_connection(&mut reader, &reply);
                eof.store(true, Ordering::SeqCst);
            });
        }
        while !self.should_drain() && !eof.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let interrupted = self.drain_and_wait();
        Ok(self.exit(interrupted))
    }
}
