//! `mps-proto/v1` — the client ↔ daemon wire protocol.
//!
//! Frames ride the same length-prefixed transport as the supervisor ↔
//! worker protocol ([`mps_supervise::proto`]), but with two upgrades the
//! service boundary demands:
//!
//! 1. **Negotiated versioning.** Every connection opens with
//!    [`ClientFrame::Hello`] carrying [`PROTO_VERSION`]; the server
//!    answers [`ServerFrame::HelloAck`] or a typed
//!    [`ServerFrame::VersionMismatch`]. Unlike the in-house worker
//!    pipe (same binary on both ends), a socket outlives deploys — two
//!    builds *will* eventually talk across a restart.
//! 2. **Checksummed envelope.** Each frame body is wrapped as
//!    `{"sum":"<16-hex fnv64>","body":"<message JSON>"}` (the journal's
//!    checksum discipline, [`mps_journal::fnv64`]): any single corrupted
//!    byte — in the length prefix, the envelope, or the body — is a typed
//!    frame error, never a silently misparsed message.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use mps_journal::fnv64;
use mps_supervise::proto::{read_frame_bytes, write_frame};

use crate::ServeError;

/// Version tag of the client ↔ daemon protocol, announced in the
/// handshake by both sides.
pub const PROTO_VERSION: &str = "mps-proto/v1";

/// The work a client can ask the daemon to do. Indices refer to the
/// deterministic paper corpus, exactly like the supervisor ↔ worker
/// protocol: requests stay tiny and the daemon cannot be handed a DAG it
/// doesn't know.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkRequest {
    /// Compute one schedule (no testbed execution): corpus DAG `dag`
    /// under simulator `variant` (`analytic`|`profile`|`empirical`) with
    /// algorithm `algo` (`HCPA`|`MCPA`). Streams one cell whose payload
    /// is the schedule JSON.
    Schedule {
        /// Index into the paper corpus.
        dag: usize,
        /// Simulator version name.
        variant: String,
        /// Algorithm name.
        algo: String,
    },
    /// Run one full grid cell: schedule, simulate, and execute `repeats`
    /// testbed runs. Streams one cell whose payload is the `CellResult`
    /// JSON.
    Simulate {
        /// Index into the paper corpus.
        dag: usize,
        /// Simulator version name.
        variant: String,
        /// Algorithm name.
        algo: String,
        /// Testbed repeats.
        repeats: u64,
        /// Optional timed platform-disturbance plan for the testbed runs
        /// (the `mps_faults::DisturbancePlan::parse` grammar, e.g.
        /// `crash@4:3;slow@2-10:5:1.5` or a `light|moderate|heavy`
        /// preset). Crashes are handled with rescue rescheduling.
        /// Defaults to `None` when missing, so old clients interoperate.
        #[serde(default)]
        disturb: Option<String>,
    },
    /// Run a streaming arrival-process workload: a seeded arrival stream
    /// draws corpus DAGs, an admission controller bounds the backlog, and
    /// the incremental DES runs jobs to completion over `horizon_events`
    /// engine events. Streams one cell whose payload is the
    /// `OnlineRun` JSON (throughput, SLO quantiles, shed counters).
    Online {
        /// Arrival-process spec: `poisson@R`, `mmpp@R0:R1:S0:S1`, or a
        /// bare Poisson rate like `0.05`.
        arrival: String,
        /// Engine events to run before draining (server-capped).
        horizon_events: u64,
        /// Arrival-stream seed.
        seed: u64,
        /// Admission-controller backlog bound (0 sheds everything).
        admission: u64,
        /// Algorithm name (`CPA`|`HCPA`|`MCPA`).
        algo: String,
    },
    /// Run the first `take` corpus DAGs × 3 simulators × 2 algorithms.
    /// Streams one cell per grid cell.
    SubsetGrid {
        /// Corpus prefix length.
        take: usize,
        /// Testbed repeats per cell.
        repeats: u64,
        /// Optional disturbance plan applied to every cell's testbed
        /// runs (same grammar and recovery as `Simulate::disturb`).
        #[serde(default)]
        disturb: Option<String>,
    },
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Opens every connection; nothing else is accepted before it.
    Hello {
        /// Protocol version the client speaks ([`PROTO_VERSION`]).
        proto: String,
        /// Free-form client identification (for logs).
        client: String,
    },
    /// Submit work. `id` is client-chosen and echoed on every reply frame
    /// so a client can multiplex.
    Submit {
        /// Client-chosen request id.
        id: u64,
        /// The work to do.
        work: WorkRequest,
        /// Optional deadline: the server stops starting new cells for
        /// this request once the deadline has passed (the cell in flight
        /// finishes and is journaled).
        deadline_ms: Option<u64>,
    },
    /// Ask for server statistics.
    Health {
        /// Client-chosen request id.
        id: u64,
    },
    /// Ask the server to drain: stop admitting, finish in-flight work,
    /// checkpoint, and exit.
    Drain {
        /// Client-chosen request id.
        id: u64,
    },
    /// Polite goodbye; the server closes the connection.
    Bye,
}

/// Summary of one completed work request.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkSummary {
    /// Cells streamed for this request (resumed + computed).
    pub cells: u64,
    /// Cells replayed from the request's journal.
    pub resumed: u64,
    /// Cells computed by this run.
    pub computed: u64,
    /// Cells quarantined as poison (crash reports, not measurements).
    pub quarantined: u64,
    /// Cells where a platform disturbance fired (still measurements).
    #[serde(default)]
    pub disturbed: u64,
    /// Rescue re-plans triggered by host crashes across the request.
    #[serde(default)]
    pub rescues: u64,
    /// `complete` | `interrupted` | `deadline` — mirrors the journal
    /// manifest status vocabulary.
    pub status: String,
}

/// Server statistics returned by [`ClientFrame::Health`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests waiting in the admission queue.
    pub queue_depth: u64,
    /// Admission queue capacity.
    pub queue_capacity: u64,
    /// Requests currently executing.
    pub inflight: u64,
    /// Requests completed since startup.
    pub served: u64,
    /// Requests shed with `Overloaded` since startup.
    pub shed: u64,
    /// Cells quarantined since startup.
    pub quarantined: u64,
    /// In-flight journals finished by startup crash recovery.
    pub recovered: u64,
    /// Connections reaped because no frame arrived within the read
    /// deadline ([`crate::ServeError::ClientStalled`]).
    #[serde(default)]
    pub stalled: u64,
    /// Cells where a platform disturbance fired, across all requests.
    #[serde(default)]
    pub disturbed: u64,
    /// Rescue re-plans triggered by host crashes, across all requests.
    #[serde(default)]
    pub rescues: u64,
    /// Median per-request service time (milliseconds, rounded; 0 until a
    /// request completes). Streaming P² estimate — no sample buffer.
    #[serde(default)]
    pub p50_service_ms: u64,
    /// 99th-percentile per-request service time (milliseconds, rounded).
    #[serde(default)]
    pub p99_service_ms: u64,
    /// True once the server has stopped admitting.
    pub draining: bool,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Successful handshake.
    HelloAck {
        /// Protocol version the server speaks.
        proto: String,
        /// Free-form server identification.
        server: String,
        /// Admission queue capacity (a hint for client pacing).
        queue_capacity: u64,
    },
    /// The handshake failed: version skew. The connection closes after
    /// this frame.
    VersionMismatch {
        /// Version the server speaks.
        want: String,
        /// Version the client announced.
        got: String,
    },
    /// The request was admitted; cell frames follow.
    Accepted {
        /// Echoed request id.
        id: u64,
    },
    /// Load shed: the queue is full. The connection stays open; retry
    /// after the hinted backoff.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Suggested retry backoff, from the queue's service-time EMA.
        retry_after_ms: u64,
    },
    /// The server is draining and admits nothing new.
    Draining {
        /// Echoed request id.
        id: u64,
    },
    /// One completed cell of an admitted request. `payload` is the
    /// verbatim JSON journaled for this cell — replays after a daemon
    /// restart are byte-identical.
    Cell {
        /// Echoed request id.
        id: u64,
        /// The cell's journal key.
        key: String,
        /// Verbatim journaled cell JSON.
        payload: String,
    },
    /// An admitted request finished.
    Done {
        /// Echoed request id.
        id: u64,
        /// Outcome counters.
        summary: WorkSummary,
    },
    /// An admitted request failed (backend error, not a poison cell —
    /// poison cells arrive as quarantined [`ServerFrame::Cell`]s).
    Failed {
        /// Echoed request id.
        id: u64,
        /// Display form of the error.
        error: String,
    },
    /// Reply to [`ClientFrame::Health`].
    Stats {
        /// Echoed request id.
        id: u64,
        /// Current statistics.
        stats: ServerStats,
    },
    /// Reply to [`ClientFrame::Drain`]: the drain has begun.
    DrainStarted {
        /// Echoed request id.
        id: u64,
    },
}

/// The checksummed envelope every `mps-proto/v1` frame travels in.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    /// 16 hex digits: FNV-1a 64 over the exact bytes of `body`.
    sum: String,
    /// The message JSON, verbatim.
    body: String,
}

/// Serializes `msg`, wraps it in a checksummed envelope, and writes it as
/// one length-prefixed frame.
pub fn send_msg<W: Write + ?Sized, T: Serialize>(w: &mut W, msg: &T) -> Result<(), ServeError> {
    let body = serde_json::to_string(msg).map_err(|e| ServeError::Frame {
        reason: format!("encode: {e}"),
    })?;
    let sum = format!("{:016x}", fnv64(body.as_bytes()));
    write_frame(&mut { w }, &Envelope { sum, body }).map_err(ServeError::from)
}

/// Reads one frame and unwraps + verifies its envelope. `Ok(None)` on a
/// clean EOF at a frame boundary.
pub fn recv_msg<R: Read + ?Sized, T: Deserialize>(r: &mut R) -> Result<Option<T>, ServeError> {
    let Some(bytes) = read_frame_bytes(&mut { r }).map_err(ServeError::from)? else {
        return Ok(None);
    };
    decode_envelope(&bytes).map(Some)
}

/// Decodes raw frame bytes: parses the envelope, verifies the checksum,
/// then parses the body. Any single corrupted byte yields a typed error.
pub fn decode_envelope<T: Deserialize>(bytes: &[u8]) -> Result<T, ServeError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ServeError::Frame {
        reason: format!("frame is not UTF-8: {e}"),
    })?;
    let env: Envelope = serde_json::from_str(text).map_err(|e| ServeError::Frame {
        reason: format!("frame is not an envelope: {e}"),
    })?;
    if env.sum.len() != 16 || !env.sum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ServeError::Frame {
            reason: "malformed envelope checksum".to_string(),
        });
    }
    let declared = u64::from_str_radix(&env.sum, 16).map_err(|e| ServeError::Frame {
        reason: format!("malformed envelope checksum: {e}"),
    })?;
    if fnv64(env.body.as_bytes()) != declared {
        return Err(ServeError::Frame {
            reason: "envelope checksum mismatch".to_string(),
        });
    }
    serde_json::from_str(&env.body).map_err(|e| ServeError::Frame {
        reason: format!("envelope body is not a valid message: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let msg = ClientFrame::Submit {
            id: 7,
            work: WorkRequest::Simulate {
                dag: 3,
                variant: "analytic".to_string(),
                algo: "HCPA".to_string(),
                repeats: 2,
                disturb: Some("crash@4:3".to_string()),
            },
            deadline_ms: Some(1500),
        };
        let mut buf = Vec::new();
        send_msg(&mut buf, &msg).unwrap();
        let mut r = &buf[..];
        assert_eq!(recv_msg::<_, ClientFrame>(&mut r).unwrap(), Some(msg));
        assert_eq!(recv_msg::<_, ClientFrame>(&mut r).unwrap(), None);
    }

    #[test]
    fn corrupted_body_byte_fails_the_checksum() {
        let msg = ServerFrame::Accepted { id: 42 };
        let mut buf = Vec::new();
        send_msg(&mut buf, &msg).unwrap();
        // Flip a byte inside the envelope body (past the 4-byte length
        // prefix and the `{"sum":"<16hex>",` prefix).
        let target = 4 + 30;
        buf[target] ^= 0x01;
        let mut r = &buf[..];
        assert!(matches!(
            recv_msg::<_, ServerFrame>(&mut r),
            Err(ServeError::Frame { .. })
        ));
    }

    #[test]
    fn a_plain_unenveloped_frame_is_rejected() {
        // A peer speaking the raw worker protocol (no envelope) must get
        // a typed frame error, not a misparse.
        let mut buf = Vec::new();
        mps_supervise::proto::write_frame(&mut buf, &ServerFrame::Accepted { id: 1 }).unwrap();
        let mut r = &buf[..];
        assert!(matches!(
            recv_msg::<_, ServerFrame>(&mut r),
            Err(ServeError::Frame { .. })
        ));
    }
}
