//! A small synchronous client for `mps-proto/v1`.
//!
//! Generic over any `Read + Write` transport so tests can drive it over
//! in-memory pipes; [`connect_unix`] is the production path.

use std::io::{Read, Write};

use crate::proto::{
    recv_msg, send_msg, ClientFrame, ServerFrame, ServerStats, WorkRequest, WorkSummary,
    PROTO_VERSION,
};
use crate::ServeError;

/// How a submitted request ended, from the client's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Admitted and finished; cells were streamed to the callback.
    Done(WorkSummary),
    /// Admitted but the backend failed it.
    Failed {
        /// Display form of the server-side error.
        error: String,
    },
    /// Shed at admission: retry after the hinted backoff.
    Overloaded {
        /// Suggested backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// Refused: the server is draining.
    Draining,
}

/// A connected, handshaken `mps-proto/v1` client.
pub struct Client<S: Read + Write> {
    io: S,
}

impl<S: Read + Write> Client<S> {
    /// Performs the handshake on `io`. Returns the client and the
    /// server's advertised queue capacity, or a typed
    /// [`ServeError::VersionMismatch`] on skew.
    pub fn handshake(io: S, client_name: &str) -> Result<(Self, u64), ServeError> {
        let mut c = Client { io };
        send_msg(
            &mut c.io,
            &ClientFrame::Hello {
                proto: PROTO_VERSION.to_string(),
                client: client_name.to_string(),
            },
        )?;
        match recv_msg::<_, ServerFrame>(&mut c.io)? {
            Some(ServerFrame::HelloAck { queue_capacity, .. }) => Ok((c, queue_capacity)),
            Some(ServerFrame::VersionMismatch { want, .. }) => Err(ServeError::VersionMismatch {
                ours: PROTO_VERSION.to_string(),
                theirs: want,
            }),
            Some(other) => Err(ServeError::Protocol {
                reason: format!("expected HelloAck, got {other:?}"),
            }),
            None => Err(ServeError::Protocol {
                reason: "connection closed during handshake".to_string(),
            }),
        }
    }

    /// Submits `work` and blocks until it resolves, invoking `on_cell`
    /// for every streamed `(key, payload)` cell.
    pub fn request(
        &mut self,
        id: u64,
        work: &WorkRequest,
        deadline_ms: Option<u64>,
        on_cell: &mut dyn FnMut(&str, &str),
    ) -> Result<RequestOutcome, ServeError> {
        send_msg(
            &mut self.io,
            &ClientFrame::Submit {
                id,
                work: work.clone(),
                deadline_ms,
            },
        )?;
        loop {
            match recv_msg::<_, ServerFrame>(&mut self.io)? {
                Some(ServerFrame::Accepted { id: i }) if i == id => continue,
                Some(ServerFrame::Overloaded {
                    id: i,
                    retry_after_ms,
                }) if i == id => return Ok(RequestOutcome::Overloaded { retry_after_ms }),
                Some(ServerFrame::Draining { id: i }) if i == id => {
                    return Ok(RequestOutcome::Draining)
                }
                Some(ServerFrame::Cell {
                    id: i,
                    key,
                    payload,
                }) if i == id => on_cell(&key, &payload),
                Some(ServerFrame::Done { id: i, summary }) if i == id => {
                    return Ok(RequestOutcome::Done(summary))
                }
                Some(ServerFrame::Failed { id: i, error }) if i == id => {
                    return Ok(RequestOutcome::Failed { error })
                }
                Some(other) => {
                    return Err(ServeError::Protocol {
                        reason: format!("unexpected frame for request {id}: {other:?}"),
                    })
                }
                None => {
                    return Err(ServeError::Protocol {
                        reason: format!("connection closed while request {id} was in flight"),
                    })
                }
            }
        }
    }

    /// Asks for server statistics.
    pub fn health(&mut self, id: u64) -> Result<ServerStats, ServeError> {
        send_msg(&mut self.io, &ClientFrame::Health { id })?;
        match recv_msg::<_, ServerFrame>(&mut self.io)? {
            Some(ServerFrame::Stats { id: i, stats }) if i == id => Ok(stats),
            Some(other) => Err(ServeError::Protocol {
                reason: format!("expected Stats, got {other:?}"),
            }),
            None => Err(ServeError::Protocol {
                reason: "connection closed awaiting Stats".to_string(),
            }),
        }
    }

    /// Asks the server to drain and waits for the acknowledgement.
    pub fn drain(&mut self, id: u64) -> Result<(), ServeError> {
        send_msg(&mut self.io, &ClientFrame::Drain { id })?;
        match recv_msg::<_, ServerFrame>(&mut self.io)? {
            Some(ServerFrame::DrainStarted { id: i }) if i == id => Ok(()),
            Some(other) => Err(ServeError::Protocol {
                reason: format!("expected DrainStarted, got {other:?}"),
            }),
            None => Err(ServeError::Protocol {
                reason: "connection closed awaiting DrainStarted".to_string(),
            }),
        }
    }

    /// Sends a polite goodbye and consumes the client.
    pub fn bye(mut self) -> Result<(), ServeError> {
        send_msg(&mut self.io, &ClientFrame::Bye)
    }

    /// Sends one raw frame without waiting for a reply (pipelined
    /// submission — load generators fire bursts this way).
    pub fn send_raw(&mut self, frame: &ClientFrame) -> Result<(), ServeError> {
        send_msg(&mut self.io, frame)
    }

    /// Receives one raw server frame (`None` on clean EOF).
    pub fn recv_raw(&mut self) -> Result<Option<ServerFrame>, ServeError> {
        recv_msg(&mut self.io)
    }
}

/// Connects to a daemon's Unix socket and handshakes, retrying for up to
/// `retry_for` while the socket does not exist yet (daemon still
/// starting). Returns the client and the server's queue capacity.
#[cfg(unix)]
pub fn connect_unix(
    socket: &std::path::Path,
    client_name: &str,
    retry_for: std::time::Duration,
) -> Result<(Client<std::os::unix::net::UnixStream>, u64), ServeError> {
    let deadline = std::time::Instant::now() + retry_for;
    loop {
        match std::os::unix::net::UnixStream::connect(socket) {
            Ok(stream) => return Client::handshake(stream, client_name),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(ServeError::io("connect", e));
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
}
