//! Bounded admission queue: the daemon's backpressure seam.
//!
//! Every request passes [`AdmissionQueue::try_admit`] before any work
//! happens. A full queue sheds the request with a retry hint derived from
//! the queue's service-time EMA — the client gets a typed `Overloaded`
//! response on an open connection instead of a hung or dropped one.
//! Executors pull admitted jobs with [`AdmissionQueue::next`]; a drain
//! stops admissions immediately, lets admitted work finish, and
//! [`AdmissionQueue::abort`] dumps the backlog when a second signal
//! demands an immediate stop.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use mps_stats::QuantileSketch;

/// Counters a [`ClientFrame::Health`](crate::proto::ClientFrame) reply is
/// built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Jobs waiting.
    pub depth: u64,
    /// Admission bound.
    pub capacity: u64,
    /// Jobs currently executing.
    pub inflight: u64,
    /// Jobs completed.
    pub served: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Exponential moving average of job service time (milliseconds).
    pub ema_service_ms: f64,
    /// Streaming median of job service time (milliseconds; 0.0 until a
    /// job finishes).
    pub p50_service_ms: f64,
    /// Streaming 99th percentile of job service time (milliseconds).
    pub p99_service_ms: f64,
    /// True once draining.
    pub draining: bool,
}

/// Admission verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; executors will pick it up.
    Admitted,
    /// Shed: the queue is at capacity.
    Shed {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// Refused: the server is draining.
    Draining,
}

struct Inner<T> {
    queue: VecDeque<T>,
    inflight: u64,
    served: u64,
    shed: u64,
    ema_ms: f64,
    latency: QuantileSketch,
    draining: bool,
}

/// A bounded MPMC job queue with admission control and drain support.
pub struct AdmissionQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// EMA smoothing factor for service times (~last 8 jobs dominate).
const EMA_ALPHA: f64 = 0.25;
/// Bounds on the retry hint handed to shed clients.
const MIN_RETRY_MS: u64 = 50;
const MAX_RETRY_MS: u64 = 60_000;

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` waiting jobs (≥ 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                inflight: 0,
                served: 0,
                shed: 0,
                ema_ms: 0.0,
                latency: QuantileSketch::new(),
                draining: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits `job` or sheds it. Never blocks.
    pub fn try_admit(&self, job: T) -> Admission {
        let mut g = self.inner.lock().unwrap();
        if g.draining {
            return Admission::Draining;
        }
        if g.queue.len() >= self.capacity {
            g.shed += 1;
            // Estimated wait for a slot: every queued + running job ahead
            // of us, at the observed per-job service time. A cold EMA
            // (no job finished yet) falls back to a token backoff.
            let per_job = if g.ema_ms > 0.0 { g.ema_ms } else { 100.0 };
            let ahead = (g.queue.len() as u64 + g.inflight + 1) as f64;
            let hint = (per_job * ahead) as u64;
            return Admission::Shed {
                retry_after_ms: hint.clamp(MIN_RETRY_MS, MAX_RETRY_MS),
            };
        }
        g.queue.push_back(job);
        drop(g);
        self.ready.notify_one();
        Admission::Admitted
    }

    /// Blocks for the next job; `None` once the queue is draining and
    /// empty (the executor's signal to exit). Increments `inflight`.
    pub fn next(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(job) = g.queue.pop_front() {
                g.inflight += 1;
                return Some(job);
            }
            if g.draining {
                return None;
            }
            g = self.ready.wait(g).unwrap();
        }
    }

    /// Records a finished job and its service time.
    pub fn finish(&self, service_ms: u64) {
        let mut g = self.inner.lock().unwrap();
        g.inflight = g.inflight.saturating_sub(1);
        g.served += 1;
        let x = service_ms as f64;
        g.ema_ms = if g.served == 1 {
            x
        } else {
            EMA_ALPHA * x + (1.0 - EMA_ALPHA) * g.ema_ms
        };
        g.latency.observe(x);
        drop(g);
        // Wake drain waiters polling `drained`.
        self.ready.notify_all();
    }

    /// Stops admissions. Queued jobs still run; executors exit once the
    /// backlog is empty.
    pub fn start_drain(&self) {
        self.inner.lock().unwrap().draining = true;
        self.ready.notify_all();
    }

    /// Dumps the backlog (for an aborted drain) and returns it so the
    /// caller can notify the owning clients.
    pub fn abort(&self) -> Vec<T> {
        let mut g = self.inner.lock().unwrap();
        g.draining = true;
        let dumped: Vec<T> = g.queue.drain(..).collect();
        drop(g);
        self.ready.notify_all();
        dumped
    }

    /// True once draining with no queued or in-flight work left.
    pub fn drained(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.draining && g.queue.is_empty() && g.inflight == 0
    }

    /// Current counters.
    pub fn stats(&self) -> QueueStats {
        let g = self.inner.lock().unwrap();
        QueueStats {
            depth: g.queue.len() as u64,
            capacity: self.capacity as u64,
            inflight: g.inflight,
            served: g.served,
            shed: g.shed,
            ema_service_ms: g.ema_ms,
            p50_service_ms: g.latency.p50(),
            p99_service_ms: g.latency.p99(),
            draining: g.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_sheds_with_a_hint() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_admit(1), Admission::Admitted);
        assert_eq!(q.try_admit(2), Admission::Admitted);
        match q.try_admit(3) {
            Admission::Shed { retry_after_ms } => {
                assert!(retry_after_ms >= MIN_RETRY_MS);
                assert!(retry_after_ms <= MAX_RETRY_MS);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.stats().depth, 2);
    }

    #[test]
    fn retry_hint_tracks_the_service_time_ema() {
        let q = AdmissionQueue::new(1);
        assert_eq!(q.try_admit(1), Admission::Admitted);
        // One served job at 1 s establishes the EMA.
        assert_eq!(q.next(), Some(1));
        q.finish(1000);
        assert_eq!(q.try_admit(2), Admission::Admitted);
        match q.try_admit(3) {
            Admission::Shed { retry_after_ms } => {
                // One queued + none inflight + self = 2 jobs ≈ 2 s.
                assert!(
                    (1500..=3000).contains(&retry_after_ms),
                    "hint {retry_after_ms}"
                );
            }
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn drain_refuses_new_work_and_empties() {
        let q = AdmissionQueue::new(4);
        q.try_admit(1);
        q.start_drain();
        assert_eq!(q.try_admit(2), Admission::Draining);
        assert!(!q.drained(), "job 1 still queued");
        assert_eq!(q.next(), Some(1));
        assert!(!q.drained(), "job 1 in flight");
        q.finish(10);
        assert!(q.drained());
        assert_eq!(q.next(), None, "executors see the drain");
    }

    #[test]
    fn abort_dumps_the_backlog() {
        let q = AdmissionQueue::new(4);
        q.try_admit(1);
        q.try_admit(2);
        assert_eq!(q.abort(), vec![1, 2]);
        assert!(q.drained());
    }

    #[test]
    fn executors_block_until_work_arrives() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::new(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.next());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_admit(99);
        assert_eq!(h.join().unwrap(), Some(99));
    }
}
