//! Property tests for the `mps-proto/v1` checksummed envelope.
//!
//! Two promises under test, for *every* frame shape in the protocol:
//!
//! * **Round-trip**: any frame — with adversarial string content (quotes,
//!   backslashes, braces, multi-byte UTF-8) — encodes and decodes to an
//!   equal value, and the stream position lands on the next frame
//!   boundary.
//! * **Corruption detection**: flip any single byte of an encoded frame
//!   (length prefix, envelope, or body) and decoding never yields a
//!   *different* message — it yields a typed [`ServeError::Frame`]. The
//!   one benign non-error case is an ASCII-case flip inside the hex
//!   checksum, which still decodes to the identical original message.

use mps_serve::proto::{
    recv_msg, send_msg, ClientFrame, ServerFrame, ServerStats, WorkRequest, WorkSummary,
};
use mps_serve::ServeError;
use proptest::prelude::*;

/// Adversarial characters for the free-text fields: JSON structural
/// bytes, escapes, and multi-byte UTF-8.
const CHARSET: &[char] = &[
    'a', 'Z', '9', '-', '_', '/', ' ', '"', '\\', '{', '}', '[', ']', ':', ',', '\n', '\t', 'τ',
    'é', '✓',
];

fn text(codes: &[u8]) -> String {
    codes
        .iter()
        .map(|&c| CHARSET[c as usize % CHARSET.len()])
        .collect()
}

fn work(kind: u8, dag: usize, s1: &str, s2: &str, n: u64) -> WorkRequest {
    match kind % 4 {
        0 => WorkRequest::Schedule {
            dag,
            variant: s1.to_string(),
            algo: s2.to_string(),
        },
        1 => WorkRequest::Simulate {
            dag,
            variant: s1.to_string(),
            algo: s2.to_string(),
            repeats: n,
            disturb: (n % 2 == 1).then(|| s2.to_string()),
        },
        2 => WorkRequest::Online {
            arrival: s1.to_string(),
            horizon_events: n,
            seed: n ^ 0x5a5a,
            admission: n % 257,
            algo: s2.to_string(),
        },
        _ => WorkRequest::SubsetGrid {
            take: dag,
            repeats: n,
            disturb: (n % 3 == 1).then(|| s1.to_string()),
        },
    }
}

/// Every client frame shape, cycled by `kind`.
fn client_frame(kind: u8, id: u64, s1: &str, s2: &str, dag: usize, n: u64) -> ClientFrame {
    match kind % 5 {
        0 => ClientFrame::Hello {
            proto: s1.to_string(),
            client: s2.to_string(),
        },
        1 => ClientFrame::Submit {
            id,
            work: work(kind / 5, dag, s1, s2, n),
            deadline_ms: if n.is_multiple_of(2) { None } else { Some(n) },
        },
        2 => ClientFrame::Health { id },
        3 => ClientFrame::Drain { id },
        _ => ClientFrame::Bye,
    }
}

/// Every server frame shape, cycled by `kind`.
fn server_frame(kind: u8, id: u64, s1: &str, s2: &str, n: u64) -> ServerFrame {
    match kind % 9 {
        0 => ServerFrame::HelloAck {
            proto: s1.to_string(),
            server: s2.to_string(),
            queue_capacity: n,
        },
        1 => ServerFrame::VersionMismatch {
            want: s1.to_string(),
            got: s2.to_string(),
        },
        2 => ServerFrame::Accepted { id },
        3 => ServerFrame::Overloaded {
            id,
            retry_after_ms: n,
        },
        4 => ServerFrame::Draining { id },
        5 => ServerFrame::Cell {
            id,
            key: s1.to_string(),
            payload: s2.to_string(),
        },
        6 => ServerFrame::Done {
            id,
            summary: WorkSummary {
                cells: n,
                resumed: n / 2,
                computed: n - n / 2,
                quarantined: n % 3,
                disturbed: n % 11,
                rescues: n % 6,
                status: s1.to_string(),
            },
        },
        7 => ServerFrame::Failed {
            id,
            error: s1.to_string(),
        },
        _ => ServerFrame::Stats {
            id,
            stats: ServerStats {
                queue_depth: n % 7,
                queue_capacity: n % 13,
                inflight: n % 3,
                served: n,
                shed: n / 9,
                quarantined: n % 5,
                recovered: n % 2,
                stalled: n % 4,
                disturbed: n % 8,
                rescues: n % 7,
                p50_service_ms: n % 17,
                p99_service_ms: n % 19,
                draining: n % 2 == 1,
            },
        },
    }
}

/// Decodes one frame from `buf`, tolerating any typed error.
fn try_decode_client(buf: &[u8]) -> Result<Option<ClientFrame>, ServeError> {
    let mut r = buf;
    recv_msg::<_, ClientFrame>(&mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Client frames round-trip through the envelope, and consecutive
    /// frames on one stream stay delimited.
    #[test]
    fn client_frames_round_trip(
        kind in 0u8..15,
        id in any::<u64>(),
        c1 in prop::collection::vec(0u8..=255, 0..12),
        c2 in prop::collection::vec(0u8..=255, 0..12),
        dag in 0usize..512,
        n in 0u64..1_000_000,
    ) {
        let a = client_frame(kind, id, &text(&c1), &text(&c2), dag, n);
        let b = client_frame(kind.wrapping_add(7), id ^ 1, &text(&c2), &text(&c1), dag + 1, n + 1);
        let mut buf = Vec::new();
        send_msg(&mut buf, &a).unwrap();
        send_msg(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        prop_assert_eq!(recv_msg::<_, ClientFrame>(&mut r).unwrap(), Some(a));
        prop_assert_eq!(recv_msg::<_, ClientFrame>(&mut r).unwrap(), Some(b));
        prop_assert_eq!(recv_msg::<_, ClientFrame>(&mut r).unwrap(), None);
    }

    /// Server frames round-trip through the envelope.
    #[test]
    fn server_frames_round_trip(
        kind in 0u8..9,
        id in any::<u64>(),
        c1 in prop::collection::vec(0u8..=255, 0..12),
        c2 in prop::collection::vec(0u8..=255, 0..12),
        n in 0u64..1_000_000,
    ) {
        let f = server_frame(kind, id, &text(&c1), &text(&c2), n);
        let mut buf = Vec::new();
        send_msg(&mut buf, &f).unwrap();
        let mut r = &buf[..];
        prop_assert_eq!(recv_msg::<_, ServerFrame>(&mut r).unwrap(), Some(f));
    }

    /// Flip the low bit of any single byte — length prefix included — and
    /// decoding fails with a typed frame error. (The low bit never merely
    /// changes hex case, so every such flip is detectable.)
    #[test]
    fn any_low_bit_flip_is_a_typed_frame_error(
        kind in 0u8..15,
        id in any::<u64>(),
        c1 in prop::collection::vec(0u8..=255, 0..12),
        c2 in prop::collection::vec(0u8..=255, 0..12),
        dag in 0usize..512,
        n in 0u64..1_000_000,
        pos_seed in any::<u64>(),
    ) {
        let f = client_frame(kind, id, &text(&c1), &text(&c2), dag, n);
        let mut buf = Vec::new();
        send_msg(&mut buf, &f).unwrap();
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= 0x01;
        match try_decode_client(&buf) {
            Err(ServeError::Frame { .. }) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} of {} was not detected: {other:?}",
                    buf.len()
                )));
            }
        }
    }

    /// Flip any single byte by any mask: decoding never yields a
    /// *different* message. (An ASCII-case flip inside the hex checksum
    /// may still decode — to the identical original.)
    #[test]
    fn no_byte_flip_ever_misparses(
        kind in 0u8..15,
        id in any::<u64>(),
        c1 in prop::collection::vec(0u8..=255, 0..12),
        c2 in prop::collection::vec(0u8..=255, 0..12),
        dag in 0usize..512,
        n in 0u64..1_000_000,
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let f = client_frame(kind, id, &text(&c1), &text(&c2), dag, n);
        let mut buf = Vec::new();
        send_msg(&mut buf, &f).unwrap();
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= mask;
        match try_decode_client(&buf) {
            Err(_) => {}
            Ok(Some(got)) => prop_assert_eq!(
                got,
                f,
                "corrupted frame decoded to a different message"
            ),
            Ok(None) => {
                return Err(TestCaseError::fail(
                    "corrupted frame decoded as clean EOF".to_string(),
                ));
            }
        }
    }
}
