//! End-to-end tests of the daemon lifecycle over a real Unix socket,
//! with a toy backend: handshake + version negotiation, request
//! streaming, admission-control shedding, deadlines, and the
//! client-initiated drain.
#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mps_journal::{RunControl, StopReason};
use mps_serve::client::connect_unix;
use mps_serve::proto::{
    recv_msg, send_msg, ClientFrame, ServerFrame, WorkRequest, WorkSummary, PROTO_VERSION,
};
use mps_serve::{Backend, RequestOutcome, ServeError, Server, ServerConfig, ServerExit};

/// A backend that streams `take` synthetic cells per `SubsetGrid`
/// request, pausing `delay` between cells so tests can race the queue.
struct ToyBackend {
    delay: Duration,
    executed: AtomicU64,
}

impl ToyBackend {
    fn new(delay: Duration) -> Self {
        ToyBackend {
            delay,
            executed: AtomicU64::new(0),
        }
    }
}

impl Backend for ToyBackend {
    fn execute(
        &self,
        work: &WorkRequest,
        ctrl: &RunControl,
        emit: &mut dyn FnMut(&str, &str) -> bool,
    ) -> Result<WorkSummary, ServeError> {
        self.executed.fetch_add(1, Ordering::SeqCst);
        let cells = match work {
            WorkRequest::SubsetGrid { take, .. } => *take as u64,
            _ => 1,
        };
        let mut summary = WorkSummary {
            status: "complete".to_string(),
            ..WorkSummary::default()
        };
        for i in 0..cells {
            if let Some(reason) = ctrl.should_stop() {
                summary.status = match reason {
                    StopReason::Cancelled => "interrupted",
                    StopReason::DeadlineExpired => "deadline",
                }
                .to_string();
                return Ok(summary);
            }
            std::thread::sleep(self.delay);
            emit(&format!("toy/cell-{i}"), &format!("{{\"cell\":{i}}}"));
            summary.cells += 1;
            summary.computed += 1;
        }
        Ok(summary)
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mps-serve-{}-{tag}.sock", std::process::id()))
}

/// Starts a daemon on its own thread; returns the join handle.
fn start(
    server: &Arc<Server>,
    socket: PathBuf,
) -> std::thread::JoinHandle<Result<ServerExit, ServeError>> {
    let server = Arc::clone(server);
    std::thread::spawn(move || server.run_unix(&socket))
}

#[test]
fn handshake_submit_stream_and_drain() {
    let socket = socket_path("basic");
    let backend = Arc::new(ToyBackend::new(Duration::ZERO));
    let server = Server::new(backend.clone(), ServerConfig::default());
    let handle = start(&server, socket.clone());

    let (mut client, cap) = connect_unix(&socket, "test", Duration::from_secs(5)).unwrap();
    assert_eq!(cap, ServerConfig::default().queue_capacity as u64);

    // A three-cell request streams three cells, in order, then Done.
    let mut cells = Vec::new();
    let outcome = client
        .request(
            7,
            &WorkRequest::SubsetGrid {
                take: 3,
                repeats: 1,
                disturb: None,
            },
            None,
            &mut |key, payload| cells.push((key.to_string(), payload.to_string())),
        )
        .unwrap();
    assert_eq!(
        cells,
        vec![
            ("toy/cell-0".to_string(), "{\"cell\":0}".to_string()),
            ("toy/cell-1".to_string(), "{\"cell\":1}".to_string()),
            ("toy/cell-2".to_string(), "{\"cell\":2}".to_string()),
        ]
    );
    match outcome {
        RequestOutcome::Done(summary) => {
            assert_eq!(summary.cells, 3);
            assert_eq!(summary.computed, 3);
            assert_eq!(summary.status, "complete");
        }
        other => panic!("expected Done, got {other:?}"),
    }

    // Health reflects the served request.
    let stats = client.health(8).unwrap();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.shed, 0);
    assert!(!stats.draining);

    // Client-initiated drain: the daemon acks, finishes, and exits clean.
    client.drain(9).unwrap();
    let exit = handle.join().unwrap().unwrap();
    assert_eq!(exit.served, 1);
    assert_eq!(exit.shed, 0);
    assert!(!exit.interrupted);
    assert!(!socket.exists(), "socket removed on exit");
}

#[test]
fn version_skew_gets_a_typed_mismatch() {
    let socket = socket_path("skew");
    let backend = Arc::new(ToyBackend::new(Duration::ZERO));
    let server = Server::new(backend, ServerConfig::default());
    let handle = start(&server, socket.clone());

    // Wait for the socket, then speak a future protocol version.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut stream = loop {
        match UnixStream::connect(&socket) {
            Ok(s) => break s,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("connect: {e}"),
        }
    };
    send_msg(
        &mut stream,
        &ClientFrame::Hello {
            proto: "mps-proto/v99".to_string(),
            client: "test".to_string(),
        },
    )
    .unwrap();
    match recv_msg::<_, ServerFrame>(&mut stream).unwrap() {
        Some(ServerFrame::VersionMismatch { want, got }) => {
            assert_eq!(want, PROTO_VERSION);
            assert_eq!(got, "mps-proto/v99");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // The server closes the connection after the mismatch frame.
    assert_eq!(recv_msg::<_, ServerFrame>(&mut stream).unwrap(), None);

    // And the typed client surfaces it as an error.
    let err = connect_unix(&socket, "test", Duration::from_secs(1));
    assert!(err.is_ok(), "a correct-version client still connects");
    drop(err);

    let (mut c, _) = connect_unix(&socket, "test", Duration::from_secs(1)).unwrap();
    c.drain(1).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn overload_is_shed_with_a_retry_hint() {
    let socket = socket_path("overload");
    // One slow executor, queue of one: a burst of submissions must shed.
    let backend = Arc::new(ToyBackend::new(Duration::from_millis(30)));
    let cfg = ServerConfig {
        queue_capacity: 1,
        executors: 1,
        ..ServerConfig::default()
    };
    let server = Server::new(backend, cfg);
    let handle = start(&server, socket.clone());

    let (mut c, _) = connect_unix(&socket, "burst", Duration::from_secs(5)).unwrap();
    // Fire submissions without reading replies: the queue (1 executor + 1
    // slot) cannot hold 6 outstanding ten-cell requests.
    for id in 0..6u64 {
        c.send_raw(&ClientFrame::Submit {
            id,
            work: WorkRequest::SubsetGrid {
                take: 10,
                repeats: 1,
                disturb: None,
            },
            deadline_ms: None,
        })
        .unwrap();
    }
    // Partition the admission verdicts (they arrive before any Cell of
    // the same id thanks to the server's write-lock ordering).
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut seen = 0u64;
    while seen < 6 {
        match c.recv_raw().unwrap() {
            Some(ServerFrame::Accepted { .. }) => {
                admitted += 1;
                seen += 1;
            }
            Some(ServerFrame::Overloaded { retry_after_ms, .. }) => {
                assert!(retry_after_ms >= 50, "hint {retry_after_ms} below floor");
                shed += 1;
                seen += 1;
            }
            Some(ServerFrame::Cell { .. }) | Some(ServerFrame::Done { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(admitted >= 1, "at least one request runs");
    assert!(shed >= 1, "a burst at 6× capacity must shed");

    // Drain on a second connection (the first still has streams queued).
    let (mut c2, _) = connect_unix(&socket, "ctl", Duration::from_secs(5)).unwrap();
    c2.drain(100).unwrap();
    let exit = handle.join().unwrap().unwrap();
    assert_eq!(exit.served, admitted, "every admitted request completes");
    assert_eq!(exit.shed, shed);
    assert!(!exit.interrupted);
}

#[test]
fn a_request_deadline_stops_work_at_a_cell_boundary() {
    let socket = socket_path("deadline");
    let backend = Arc::new(ToyBackend::new(Duration::from_millis(10)));
    let server = Server::new(backend, ServerConfig::default());
    let handle = start(&server, socket.clone());

    let (mut c, _) = connect_unix(&socket, "deadline", Duration::from_secs(5)).unwrap();
    // 200 cells × 10 ms ≫ a 40 ms deadline: the request must come back
    // early with the deadline status and only a prefix of the cells.
    let mut cells = 0u64;
    let outcome = c
        .request(
            1,
            &WorkRequest::SubsetGrid {
                take: 200,
                repeats: 1,
                disturb: None,
            },
            Some(40),
            &mut |_, _| cells += 1,
        )
        .unwrap();
    match outcome {
        RequestOutcome::Done(summary) => {
            assert_eq!(summary.status, "deadline");
            assert!(summary.cells < 200, "deadline must cut the grid short");
        }
        other => panic!("expected Done-with-deadline, got {other:?}"),
    }

    c.drain(2).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn draining_refuses_new_submissions() {
    let socket = socket_path("drainrefuse");
    let backend = Arc::new(ToyBackend::new(Duration::from_millis(20)));
    let server = Server::new(backend, ServerConfig::default());
    let handle = start(&server, socket.clone());

    let (mut c, _) = connect_unix(&socket, "drainer", Duration::from_secs(5)).unwrap();
    // Park one slow request so the drain has something to finish, using a
    // raw submit (no reply pump) on a second connection.
    let (mut busy, _) = connect_unix(&socket, "busy", Duration::from_secs(5)).unwrap();
    busy.send_raw(&ClientFrame::Submit {
        id: 1,
        work: WorkRequest::SubsetGrid {
            take: 5,
            repeats: 1,
            disturb: None,
        },
        deadline_ms: None,
    })
    .unwrap();
    // Wait for the admission ack so the drain can't race it.
    match busy.recv_raw().unwrap() {
        Some(ServerFrame::Accepted { id: 1 }) => {}
        other => panic!("expected Accepted, got {other:?}"),
    }

    c.drain(2).unwrap();
    // Post-drain submissions get the typed Draining refusal.
    let outcome = c
        .request(
            3,
            &WorkRequest::SubsetGrid {
                take: 1,
                repeats: 1,
                disturb: None,
            },
            None,
            &mut |_, _| {},
        )
        .unwrap();
    assert_eq!(outcome, RequestOutcome::Draining);

    let exit = handle.join().unwrap().unwrap();
    // The parked request still finished: graceful means admitted work
    // completes.
    assert_eq!(exit.served, 1);
    assert!(!exit.interrupted);
}
