//! Wire-fault tests: the daemon under a misbehaving client — stalls,
//! corrupted frames, half-closed connections. Every failure mode must be
//! a typed error (and, for stalls, a reaped connection + counter), never
//! a panic, a wedged reader thread, or an untyped exit.
#![cfg(unix)]

use std::io::Read;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mps_faults::io::{ChaosStream, WireFaultPlan};
use mps_journal::RunControl;
use mps_serve::client::connect_unix;
use mps_serve::proto::{
    recv_msg, send_msg, ClientFrame, ServerFrame, WorkRequest, WorkSummary, PROTO_VERSION,
};
use mps_serve::server::Reply;
use mps_serve::{Backend, ServeError, Server, ServerConfig, ServerExit};

/// A backend that synchronously streams one synthetic cell per request.
struct OneCell;

impl Backend for OneCell {
    fn execute(
        &self,
        _work: &WorkRequest,
        _ctrl: &RunControl,
        emit: &mut dyn FnMut(&str, &str) -> bool,
    ) -> Result<WorkSummary, ServeError> {
        emit("toy/cell-0", "{\"cell\":0}");
        Ok(WorkSummary {
            cells: 1,
            computed: 1,
            status: "complete".to_string(),
            ..WorkSummary::default()
        })
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mps-chaos-wire-{}-{tag}.sock", std::process::id()))
}

fn start(
    server: &Arc<Server>,
    socket: PathBuf,
) -> std::thread::JoinHandle<Result<ServerExit, ServeError>> {
    let server = Arc::clone(server);
    std::thread::spawn(move || server.run_unix(&socket))
}

fn connect_raw(socket: &PathBuf) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("connect: {e}"),
        }
    }
}

/// Deterministic core of the stall contract: a reader whose reads time
/// out yields a typed `ClientStalled` from `serve_connection` and bumps
/// the stalled counter — no sockets, no timing.
#[test]
fn a_timed_out_read_is_a_typed_client_stall() {
    struct TimesOut;
    impl Read for TimesOut {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
        }
    }
    let server = Server::new(
        Arc::new(OneCell),
        ServerConfig {
            read_timeout: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        },
    );
    let reply: Reply = Arc::new(Mutex::new(Box::new(Vec::new())));
    let mut reader = TimesOut;
    let err = server.serve_connection(&mut reader, &reply).unwrap_err();
    assert_eq!(err, ServeError::ClientStalled { timeout_ms: 250 });
    assert_eq!(server.stats().stalled, 1);
}

/// End to end over a real socket: a client that handshakes and then goes
/// silent is reaped after the read deadline — the daemon's drain does not
/// wait on it, and the health counter records the reap.
#[test]
fn a_stalled_client_is_reaped_and_counted() {
    let socket = socket_path("stall");
    let server = Server::new(
        Arc::new(OneCell),
        ServerConfig {
            read_timeout: Some(Duration::from_millis(80)),
            ..ServerConfig::default()
        },
    );
    let handle = start(&server, socket.clone());

    let mut stall = connect_raw(&socket);
    stall
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    send_msg(
        &mut stall,
        &ClientFrame::Hello {
            proto: PROTO_VERSION.to_string(),
            client: "stall".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(
        recv_msg::<_, ServerFrame>(&mut stall).unwrap(),
        Some(ServerFrame::HelloAck { .. })
    ));
    // ... and now say nothing. The server must shut the connection down
    // (we observe EOF) once the 80 ms read deadline expires.
    assert_eq!(recv_msg::<_, ServerFrame>(&mut stall).unwrap(), None);
    assert_eq!(server.stats().stalled, 1);

    // A healthy client still gets served afterwards.
    let (mut c, _) = connect_unix(&socket, "healthy", Duration::from_secs(5)).unwrap();
    let stats = c.health(1).unwrap();
    assert_eq!(stats.stalled, 1);
    c.drain(2).unwrap();
    let exit = handle.join().unwrap().unwrap();
    assert!(!exit.interrupted);
}

/// A corrupted frame (single flipped bit) is a typed frame error: the
/// connection closes, the daemon neither panics nor wedges, and later
/// connections work.
#[test]
fn a_corrupted_frame_closes_the_connection_typed() {
    let socket = socket_path("corrupt");
    // A short read deadline bounds the damage a corrupted length prefix
    // can do (the server would otherwise wait for bytes that never come).
    let server = Server::new(
        Arc::new(OneCell),
        ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    );
    let handle = start(&server, socket.clone());

    for seed in 0..4u64 {
        // ChaosStream with corrupt@1.0 flips one seeded bit in every
        // write — the handshake frame arrives damaged.
        let raw = connect_raw(&socket);
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut chaos = ChaosStream::new(
            raw,
            seed,
            WireFaultPlan {
                corrupt: 1.0,
                ..WireFaultPlan::default()
            },
        );
        send_msg(
            &mut chaos,
            &ClientFrame::Hello {
                proto: PROTO_VERSION.to_string(),
                client: "corrupt".to_string(),
            },
        )
        .unwrap();
        assert!(chaos.injected().corrupt >= 1, "plan must have fired");
        // The server rejects the damaged frame and closes: we see either
        // a clean EOF or a reset, never a HelloAck.
        if let Ok(Some(frame)) = recv_msg::<_, ServerFrame>(&mut chaos) {
            panic!("damaged handshake must not be accepted: {frame:?}");
        }
    }

    // The daemon survives all of it and still serves.
    let (mut c, _) = connect_unix(&socket, "after", Duration::from_secs(5)).unwrap();
    assert!(c.health(1).is_ok());
    c.drain(2).unwrap();
    handle.join().unwrap().unwrap();
}

/// A half-closed connection (client shuts its write side) is a clean
/// session end: EOF, not a stall, not an error, and the drain proceeds.
#[test]
fn a_half_closed_connection_ends_the_session_cleanly() {
    let socket = socket_path("halfclose");
    let server = Server::new(
        Arc::new(OneCell),
        ServerConfig {
            read_timeout: Some(Duration::from_millis(500)),
            ..ServerConfig::default()
        },
    );
    let handle = start(&server, socket.clone());

    let mut half = connect_raw(&socket);
    half.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    send_msg(
        &mut half,
        &ClientFrame::Hello {
            proto: PROTO_VERSION.to_string(),
            client: "half".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(
        recv_msg::<_, ServerFrame>(&mut half).unwrap(),
        Some(ServerFrame::HelloAck { .. })
    ));
    half.shutdown(std::net::Shutdown::Write).unwrap();
    // The server sees EOF and closes its side too.
    assert_eq!(recv_msg::<_, ServerFrame>(&mut half).unwrap(), None);
    assert_eq!(server.stats().stalled, 0, "EOF is not a stall");

    let (mut c, _) = connect_unix(&socket, "ctl", Duration::from_secs(5)).unwrap();
    c.drain(1).unwrap();
    let exit = handle.join().unwrap().unwrap();
    assert!(!exit.interrupted);
}
