//! Event-driven schedule execution on the L07 platform.
//!
//! Shared by the three simulator versions *and* the emulated testbed: the
//! only difference between them is the [`ExecutionModel`] that supplies
//! task durations and overheads. Execution semantics follow the paper's
//! TGrid module (§III): tasks run in the schedule's order on their assigned
//! processor sets; when a task finishes, its output matrix is redistributed
//! to each successor's processor set (point-to-point transfers computed
//! from the 1-D block overlap); a task starts once
//!
//! 1. it is at the head of the queue of **every** host it uses (hosts
//!    execute their assigned tasks in schedule order), and
//! 2. the redistribution of every predecessor's output has completed.
//!
//! Task startup overhead (JVM spawning) and redistribution protocol
//! overhead (subnet-manager registration) are charged as fixed latencies;
//! data transfers flow through the L07 network model and contend on links.

use std::collections::HashMap;

use mps_dag::{Dag, TaskId};
use mps_kernels::{BlockDist1D, RedistPlan};
use mps_l07::{L07Error, L07Sim, PTaskId, PTaskSpec};
use mps_platform::{Cluster, HostId};
use mps_sched::Schedule;

/// How one task's execution is simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskExecution {
    /// Analytic: per-rank flop counts and the kernel's internal
    /// communication matrix go through the L07 engine (the §IV simulator).
    Analytic,
    /// A fixed wall-clock duration (profile/empirical models and the
    /// testbed's measured ground truth).
    Fixed(f64),
}

/// Supplies the concrete quantities for one execution run.
///
/// `&mut self` so stochastic environments (the testbed) can draw fresh
/// noise per task.
pub trait ExecutionModel {
    /// Execution mode/duration for a task on its host set.
    fn task_execution(
        &mut self,
        task: TaskId,
        kernel: mps_kernels::Kernel,
        hosts: &[HostId],
    ) -> TaskExecution;

    /// Startup overhead (seconds) charged before the task's execution.
    fn startup_overhead(&mut self, task: TaskId, p: usize) -> f64;

    /// Redistribution protocol overhead (seconds) for an edge from a
    /// `p_src`-processor producer to a `p_dst`-processor consumer.
    fn redist_overhead(&mut self, p_src: usize, p_dst: usize) -> f64;
}

/// Execution outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// Application makespan (seconds).
    pub makespan: f64,
    /// Per-task `(start, finish)` times, indexed by task id. Start includes
    /// the startup overhead phase.
    pub task_spans: Vec<(f64, f64)>,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The schedule failed validation against the DAG/platform.
    InvalidSchedule(String),
    /// The underlying simulator failed.
    Sim(L07Error),
    /// The execution deadlocked (should be impossible for valid schedules;
    /// reported defensively instead of hanging).
    Stuck {
        /// Tasks that never started.
        unstarted: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
            ExecError::Sim(e) => write!(f, "simulation error: {e}"),
            ExecError::Stuck { unstarted } => {
                write!(f, "execution stuck with {unstarted} unstarted tasks")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<L07Error> for ExecError {
    fn from(e: L07Error) -> Self {
        ExecError::Sim(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Waiting,
    Running,
    Done,
}

/// Executes `schedule` for `dag` on `cluster` under `model`.
pub fn execute(
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
) -> Result<ExecutionResult, ExecError> {
    schedule
        .validate(dag, cluster)
        .map_err(|e| ExecError::InvalidSchedule(e.to_string()))?;

    let n_tasks = dag.len();
    if n_tasks == 0 {
        return Ok(ExecutionResult {
            makespan: 0.0,
            task_spans: Vec::new(),
        });
    }

    let mut sim = L07Sim::new(cluster.clone());

    // Placement lookup.
    let mut hosts_of: Vec<Vec<HostId>> = vec![Vec::new(); n_tasks];
    for st in &schedule.tasks {
        hosts_of[st.task.index()] = st.hosts.clone();
    }

    // Per-host task queues in schedule order.
    let n_hosts = cluster.node_count();
    let mut queue: Vec<Vec<TaskId>> = vec![Vec::new(); n_hosts];
    for st in &schedule.tasks {
        for h in &st.hosts {
            queue[h.index()].push(st.task);
        }
    }
    let mut queue_head = vec![0usize; n_hosts];

    // Incoming redistributions still pending per task.
    let mut pending_redists: Vec<usize> = dag
        .task_ids()
        .map(|t| dag.predecessors(t).len())
        .collect();

    let mut state = vec![TaskState::Waiting; n_tasks];
    let mut spans = vec![(0.0_f64, 0.0_f64); n_tasks];
    let mut done_count = 0usize;

    // Maps in-flight simulator activities to what they mean.
    #[derive(Debug, Clone, Copy)]
    enum Meaning {
        TaskRun(TaskId),
        Redist {
            succ: TaskId,
        },
    }
    let mut in_flight: HashMap<PTaskId, Meaning> = HashMap::new();

    // Tries to start every eligible waiting task. Returns how many started.
    let try_start = |sim: &mut L07Sim,
                     in_flight: &mut HashMap<PTaskId, Meaning>,
                     state: &mut Vec<TaskState>,
                     spans: &mut Vec<(f64, f64)>,
                     queue_head: &[usize],
                     pending_redists: &[usize],
                     model: &mut dyn ExecutionModel|
     -> Result<usize, ExecError> {
        let mut started = 0;
        for st in &schedule.tasks {
            let t = st.task;
            if state[t.index()] != TaskState::Waiting {
                continue;
            }
            if pending_redists[t.index()] > 0 {
                continue;
            }
            let at_head = st
                .hosts
                .iter()
                .all(|h| queue[h.index()].get(queue_head[h.index()]) == Some(&t));
            if !at_head {
                continue;
            }
            // Launch: startup latency + execution.
            let kernel = dag.task(t).kernel;
            let p = st.hosts.len();
            let startup = model.startup_overhead(t, p);
            let spec = match model.task_execution(t, kernel, &st.hosts) {
                TaskExecution::Analytic => {
                    let flops = kernel.flops_per_proc(p);
                    let comm = kernel.comm_matrix(p);
                    PTaskSpec::compute(&st.hosts, &vec![flops; p])
                        .with_comm_matrix(&st.hosts, &comm)
                        .with_extra_latency(startup)
                }
                TaskExecution::Fixed(duration) => {
                    PTaskSpec::new().with_extra_latency(startup + duration.max(0.0))
                }
            }
            .with_label(format!("task-{}", t.index()));
            let id = sim.submit(spec)?;
            in_flight.insert(id, Meaning::TaskRun(t));
            state[t.index()] = TaskState::Running;
            spans[t.index()].0 = sim.now();
            started += 1;
        }
        Ok(started)
    };

    try_start(
        &mut sim,
        &mut in_flight,
        &mut state,
        &mut spans,
        &queue_head,
        &pending_redists,
        model,
    )?;

    while done_count < n_tasks {
        let completions = match sim.next_completions()? {
            Some(c) => c,
            None => {
                return Err(ExecError::Stuck {
                    unstarted: state
                        .iter()
                        .filter(|&&s| s != TaskState::Done)
                        .count(),
                })
            }
        };
        for c in completions {
            match in_flight.remove(&c.task) {
                Some(Meaning::TaskRun(t)) => {
                    state[t.index()] = TaskState::Done;
                    spans[t.index()].1 = c.time;
                    done_count += 1;
                    // Release host queues.
                    for h in &hosts_of[t.index()] {
                        debug_assert_eq!(
                            queue[h.index()][queue_head[h.index()]],
                            t,
                            "queue discipline violated"
                        );
                        queue_head[h.index()] += 1;
                    }
                    // Start redistributions to every successor.
                    let src_hosts = &hosts_of[t.index()];
                    let n = dag.task(t).kernel.n();
                    for &succ in dag.successors(t) {
                        let dst_hosts = &hosts_of[succ.index()];
                        let plan = RedistPlan::compute(
                            &BlockDist1D::vanilla(n, src_hosts.len()),
                            &BlockDist1D::vanilla(n, dst_hosts.len()),
                        );
                        let src_idx: Vec<usize> =
                            src_hosts.iter().map(|h| h.index()).collect();
                        let dst_idx: Vec<usize> =
                            dst_hosts.iter().map(|h| h.index()).collect();
                        let flows: Vec<(HostId, HostId, f64)> = plan
                            .network_transfers(&src_idx, &dst_idx)
                            .into_iter()
                            .map(|(s, d, b)| (HostId(s), HostId(d), b))
                            .collect();
                        let overhead =
                            model.redist_overhead(src_hosts.len(), dst_hosts.len());
                        let spec = PTaskSpec::transfers(flows)
                            .with_extra_latency(overhead)
                            .with_label(format!(
                                "redist-{}-{}",
                                t.index(),
                                succ.index()
                            ));
                        let id = sim.submit(spec)?;
                        in_flight.insert(id, Meaning::Redist { succ });
                    }
                }
                Some(Meaning::Redist { succ }) => {
                    pending_redists[succ.index()] -= 1;
                }
                None => unreachable!("unknown completion"),
            }
        }
        try_start(
            &mut sim,
            &mut in_flight,
            &mut state,
            &mut spans,
            &queue_head,
            &pending_redists,
            model,
        )?;
    }

    let makespan = spans.iter().map(|&(_, f)| f).fold(0.0_f64, f64::max);
    Ok(ExecutionResult {
        makespan,
        task_spans: spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_kernels::Kernel;
    use mps_sched::{Hcpa, Scheduler, Schedule, ScheduledTask};
    use mps_model::AnalyticModel;

    /// Instrumented model: counts calls, returns fixed quantities.
    struct Counting {
        task_calls: usize,
        startup_calls: usize,
        redist_calls: usize,
        duration: f64,
        startup: f64,
        redist: f64,
    }

    impl Counting {
        fn new(duration: f64, startup: f64, redist: f64) -> Self {
            Counting {
                task_calls: 0,
                startup_calls: 0,
                redist_calls: 0,
                duration,
                startup,
                redist,
            }
        }
    }

    impl ExecutionModel for Counting {
        fn task_execution(
            &mut self,
            _task: TaskId,
            _kernel: Kernel,
            _hosts: &[HostId],
        ) -> TaskExecution {
            self.task_calls += 1;
            TaskExecution::Fixed(self.duration)
        }
        fn startup_overhead(&mut self, _task: TaskId, _p: usize) -> f64 {
            self.startup_calls += 1;
            self.startup
        }
        fn redist_overhead(&mut self, _p_src: usize, _p_dst: usize) -> f64 {
            self.redist_calls += 1;
            self.redist
        }
    }

    fn diamond() -> Dag {
        Dag::new(
            vec![Kernel::MatAdd { n: 2000 }; 4],
            &[
                (TaskId(0), TaskId(1)),
                (TaskId(0), TaskId(2)),
                (TaskId(1), TaskId(3)),
                (TaskId(2), TaskId(3)),
            ],
        )
        .unwrap()
    }

    fn schedule_for(dag: &Dag, cluster: &Cluster) -> Schedule {
        Hcpa.schedule(dag, cluster, &AnalyticModel::paper_jvm())
    }

    #[test]
    fn model_is_consulted_once_per_task_and_edge() {
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let schedule = schedule_for(&dag, &cluster);
        let mut model = Counting::new(1.0, 0.5, 0.1);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert_eq!(model.task_calls, 4);
        assert_eq!(model.startup_calls, 4);
        assert_eq!(model.redist_calls, 4, "one per DAG edge");
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn makespan_decomposes_for_a_serial_chain() {
        // Chain of 3 on one host: makespan = Σ (startup + duration) +
        // redistribution overheads between stages (transfers are local).
        let dag = Dag::new(
            vec![Kernel::MatAdd { n: 2000 }; 3],
            &[(TaskId(0), TaskId(1)), (TaskId(1), TaskId(2))],
        )
        .unwrap();
        let cluster = Cluster::bayreuth();
        let mk = |t: usize| ScheduledTask {
            task: TaskId(t),
            hosts: vec![HostId(0)],
            est_start: t as f64 * 10.0,
            est_finish: (t + 1) as f64 * 10.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0), mk(1), mk(2)],
            est_makespan: 30.0,
        };
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        let expected = 3.0 * (2.0 + 0.5) + 2.0 * 0.25;
        assert!((r.makespan - expected).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn zero_duration_tasks_still_flow_through_dependencies() {
        // All tasks co-located on the same host set: every redistribution
        // is local, so with zero model quantities the whole run collapses
        // to (near) zero time.
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let hosts: Vec<HostId> = (0..4).map(HostId).collect();
        let mk = |t: usize| ScheduledTask {
            task: TaskId(t),
            hosts: hosts.clone(),
            est_start: t as f64,
            est_finish: t as f64 + 1.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0), mk(1), mk(2), mk(3)],
            est_makespan: 4.0,
        };
        let mut model = Counting::new(0.0, 0.0, 0.0);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert!(r.makespan < 1e-9, "makespan {}", r.makespan);
        for &(s, f) in &r.task_spans {
            assert!(f >= s);
        }
    }

    #[test]
    fn spans_respect_dependencies_under_any_positive_quantities() {
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let schedule = schedule_for(&dag, &cluster);
        for (d, su, re) in [(1.0, 0.0, 0.0), (0.5, 2.0, 0.0), (3.0, 0.1, 1.5)] {
            let mut model = Counting::new(d, su, re);
            let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
            for t in dag.task_ids() {
                for &pred in dag.predecessors(t) {
                    assert!(
                        r.task_spans[t.index()].0 >= r.task_spans[pred.index()].1 - 1e-9,
                        "task {t} started before {pred} finished (d={d} su={su} re={re})"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_duration_is_clamped_not_propagated() {
        let dag = Dag::new(vec![Kernel::MatAdd { n: 2000 }], &[]).unwrap();
        let cluster = Cluster::bayreuth();
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![ScheduledTask {
                task: TaskId(0),
                hosts: vec![HostId(0)],
                est_start: 0.0,
                est_finish: 1.0,
            }],
            est_makespan: 1.0,
        };
        struct NanModel;
        impl ExecutionModel for NanModel {
            fn task_execution(
                &mut self,
                _t: TaskId,
                _k: Kernel,
                _h: &[HostId],
            ) -> TaskExecution {
                TaskExecution::Fixed(f64::NAN)
            }
            fn startup_overhead(&mut self, _t: TaskId, _p: usize) -> f64 {
                0.0
            }
            fn redist_overhead(&mut self, _s: usize, _d: usize) -> f64 {
                0.0
            }
        }
        let r = execute(&dag, &cluster, &schedule, &mut NanModel).unwrap();
        assert!(r.makespan.is_finite());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mps_dag::{generate, DagGenParams};
    use mps_model::{AnalyticModel, EmpiricalModel, PerfModel};
    use mps_sched::{Hcpa, Mcpa, Scheduler};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For arbitrary generated DAGs and both algorithms, execution under
        /// a deterministic model yields finite makespans, dependency-ordered
        /// spans, and a makespan at least the longest single task.
        #[test]
        fn execution_invariants(
            tasks in 1usize..14,
            width_exp in 1u32..4,
            ratio in 0.0f64..1.0,
            seed in 0u64..3000,
            use_empirical in any::<bool>(),
        ) {
            let params = DagGenParams {
                tasks,
                input_matrices: 2usize.pow(width_exp),
                add_ratio: ratio,
                matrix_size: 2000,
            };
            let dag = generate(&params, seed);
            let cluster = Cluster::bayreuth();
            for algo in [&Hcpa as &dyn Scheduler, &Mcpa] {
                let (schedule, result) = if use_empirical {
                    let model = EmpiricalModel::table_ii();
                    let schedule = algo.schedule(&dag, &cluster, &model);
                    let mut exec = crate::simulator::ModelExecution::new(model);
                    let result = execute(&dag, &cluster, &schedule, &mut exec).unwrap();
                    (schedule, result)
                } else {
                    let model = AnalyticModel::paper_jvm();
                    let schedule = algo.schedule(&dag, &cluster, &model);
                    let mut exec = crate::simulator::ModelExecution::new(model);
                    let result = execute(&dag, &cluster, &schedule, &mut exec).unwrap();
                    (schedule, result)
                };
                prop_assert!(result.makespan.is_finite() && result.makespan >= 0.0);
                // Dependencies respected.
                for t in dag.task_ids() {
                    let (s, f) = result.task_spans[t.index()];
                    prop_assert!(f >= s - 1e-9);
                    for &pred in dag.predecessors(t) {
                        prop_assert!(s >= result.task_spans[pred.index()].1 - 1e-9);
                    }
                }
                // The makespan covers every span.
                for &(_, f) in &result.task_spans {
                    prop_assert!(result.makespan >= f - 1e-9);
                }
                // Host-exclusivity: tasks sharing a host never overlap.
                for a in &schedule.tasks {
                    for b in &schedule.tasks {
                        if a.task >= b.task {
                            continue;
                        }
                        let share = a.hosts.iter().any(|h| b.hosts.contains(h));
                        if share {
                            let (sa, fa) = result.task_spans[a.task.index()];
                            let (sb, fb) = result.task_spans[b.task.index()];
                            prop_assert!(
                                fa <= sb + 1e-9 || fb <= sa + 1e-9,
                                "overlap: {:?} vs {:?}",
                                (sa, fa),
                                (sb, fb)
                            );
                        }
                    }
                }
                // The model is consulted at least once per task; makespan is
                // bounded below by the longest single task duration.
                let longest = dag
                    .task_ids()
                    .map(|t| {
                        let p = schedule
                            .placement(t)
                            .expect("placed")
                            .p();
                        if use_empirical {
                            EmpiricalModel::table_ii().task_time(dag.task(t).kernel, p)
                        } else {
                            AnalyticModel::paper_jvm().task_time(dag.task(t).kernel, p)
                        }
                    })
                    .fold(0.0_f64, f64::max);
                prop_assert!(result.makespan >= longest * 0.999);
            }
        }
    }
}
