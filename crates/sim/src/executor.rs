//! Event-driven schedule execution on the L07 platform.
//!
//! Shared by the three simulator versions *and* the emulated testbed: the
//! only difference between them is the [`ExecutionModel`] that supplies
//! task durations and overheads. Execution semantics follow the paper's
//! TGrid module (§III): tasks run in the schedule's order on their assigned
//! processor sets; when a task finishes, its output matrix is redistributed
//! to each successor's processor set (point-to-point transfers computed
//! from the 1-D block overlap); a task starts once
//!
//! 1. it is at the head of the queue of **every** host it uses (hosts
//!    execute their assigned tasks in schedule order), and
//! 2. the redistribution of every predecessor's output has completed.
//!
//! Task startup overhead (JVM spawning) and redistribution protocol
//! overhead (subnet-manager registration) are charged as fixed latencies;
//! data transfers flow through the L07 network model and contend on links.

use std::collections::HashMap;

use mps_dag::{Dag, TaskId};
use mps_des::{EngineError, Watchdog};
use mps_faults::{FaultModel, TaskDisposition};
use mps_kernels::{BlockDist1D, RedistPlan};
use mps_l07::{L07Error, L07Sim, PTaskId, PTaskSpec};
use mps_platform::{Cluster, HostId};
use mps_sched::Schedule;

/// How one task's execution is simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskExecution {
    /// Analytic: per-rank flop counts and the kernel's internal
    /// communication matrix go through the L07 engine (the §IV simulator).
    Analytic,
    /// A fixed wall-clock duration (profile/empirical models and the
    /// testbed's measured ground truth).
    Fixed(f64),
}

/// Supplies the concrete quantities for one execution run.
///
/// `&mut self` so stochastic environments (the testbed) can draw fresh
/// noise per task.
pub trait ExecutionModel {
    /// Execution mode/duration for a task on its host set.
    fn task_execution(
        &mut self,
        task: TaskId,
        kernel: mps_kernels::Kernel,
        hosts: &[HostId],
    ) -> TaskExecution;

    /// Startup overhead (seconds) charged before the task's execution.
    fn startup_overhead(&mut self, task: TaskId, p: usize) -> f64;

    /// Redistribution protocol overhead (seconds) for an edge from a
    /// `p_src`-processor producer to a `p_dst`-processor consumer.
    fn redist_overhead(&mut self, p_src: usize, p_dst: usize) -> f64;

    /// The fault environment this model executes under, if any.
    ///
    /// `None` (the default) means a healthy machine: the executor takes
    /// exactly the pre-fault code path, consulting the model once per task
    /// and per edge. Implementations that emulate an unreliable
    /// environment (see `mps-testbed`) return a [`FaultModel`], and the
    /// executor consults it at every launch attempt and redistribution.
    fn fault_model(&mut self) -> Option<&mut dyn FaultModel> {
        None
    }
}

/// Resilience policy for [`execute_with_policy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Retries allowed per task after its first attempt; exceeding the
    /// budget fails the execution with [`ExecError::TaskFailed`].
    pub max_retries: u32,
    /// Initial retry backoff (seconds of simulated time); attempt `k`
    /// waits `backoff_base · 2^k`, capped at [`ExecPolicy::backoff_cap`].
    pub backoff_base: f64,
    /// Upper bound on a single backoff wait (seconds).
    pub backoff_cap: f64,
    /// Optional divergence watchdog installed on the DES engine; trips
    /// as [`ExecError::Timeout`].
    pub watchdog: Option<Watchdog>,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            max_retries: 3,
            backoff_base: 0.5,
            backoff_cap: 30.0,
            watchdog: None,
        }
    }
}

/// Execution outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// Application makespan (seconds).
    pub makespan: f64,
    /// Per-task `(start, finish)` times, indexed by task id. Start includes
    /// the startup overhead phase (of the first attempt, under faults).
    pub task_spans: Vec<(f64, f64)>,
    /// Per-task count of failed launch attempts that were retried
    /// (all-zero on a healthy machine).
    pub task_retries: Vec<u32>,
}

impl ExecutionResult {
    /// Total retries across all tasks.
    pub fn total_retries(&self) -> u32 {
        self.task_retries.iter().sum()
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The schedule failed validation against the DAG/platform.
    InvalidSchedule(String),
    /// The underlying simulator failed.
    Sim(L07Error),
    /// The execution deadlocked or stopped progressing (should be
    /// impossible for valid schedules; reported defensively instead of
    /// hanging).
    Stalled {
        /// Tasks that never finished.
        unstarted: usize,
    },
    /// The [`Watchdog`] tripped: execution overran its simulated-time
    /// horizon or step budget.
    Timeout {
        /// Simulated time when the watchdog fired.
        time: f64,
    },
    /// A task exhausted its retry budget under injected faults.
    TaskFailed {
        /// The failing task.
        task: TaskId,
        /// Attempts made (first launch + retries).
        attempts: u32,
    },
    /// A host crash stranded unfinished work and the active
    /// [`RecoveryPolicy`] could not (or would not) repair the schedule.
    HostFailed {
        /// The crashed host.
        host: HostId,
        /// Unfinished tasks placed on it when it failed.
        stranded: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
            ExecError::Sim(e) => write!(f, "simulation error: {e}"),
            ExecError::Stalled { unstarted } => {
                write!(f, "execution stalled with {unstarted} unfinished tasks")
            }
            ExecError::Timeout { time } => {
                write!(f, "execution watchdog timed out at t={time}")
            }
            ExecError::TaskFailed { task, attempts } => {
                write!(f, "task {task} failed after {attempts} attempts")
            }
            ExecError::HostFailed { host, stranded } => {
                write!(f, "host {host} failed with {stranded} unfinished tasks")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<L07Error> for ExecError {
    fn from(e: L07Error) -> Self {
        match e {
            L07Error::Engine(EngineError::Timeout { time, .. }) => ExecError::Timeout { time },
            other => ExecError::Sim(other),
        }
    }
}

/// Wraps any [`ExecutionModel`] with a scripted fault environment.
///
/// Delegates every quantity to `inner` and exposes `faults` through
/// [`ExecutionModel::fault_model`], so the executor applies the plan's
/// crashes, slowdowns, launch failures, and link degradations on top of
/// the inner model's timings.
#[derive(Debug, Clone)]
pub struct FaultyExecution<M> {
    inner: M,
    faults: mps_faults::ScriptedFaults,
}

impl<M: ExecutionModel> FaultyExecution<M> {
    /// Wraps `inner` with the fault environment described by `faults`.
    pub fn new(inner: M, faults: mps_faults::ScriptedFaults) -> Self {
        FaultyExecution { inner, faults }
    }

    /// The wrapped model.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: ExecutionModel> ExecutionModel for FaultyExecution<M> {
    fn task_execution(
        &mut self,
        task: TaskId,
        kernel: mps_kernels::Kernel,
        hosts: &[HostId],
    ) -> TaskExecution {
        self.inner.task_execution(task, kernel, hosts)
    }

    fn startup_overhead(&mut self, task: TaskId, p: usize) -> f64 {
        self.inner.startup_overhead(task, p)
    }

    fn redist_overhead(&mut self, p_src: usize, p_dst: usize) -> f64 {
        self.inner.redist_overhead(p_src, p_dst)
    }

    fn fault_model(&mut self) -> Option<&mut dyn FaultModel> {
        Some(&mut self.faults)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Waiting,
    /// A launch attempt failed; the task sits out its backoff delay.
    Backoff,
    Running,
    Done,
}

/// What an in-flight simulator activity means to the executor.
#[derive(Debug, Clone, Copy)]
enum Meaning {
    TaskRun(TaskId),
    /// A failed attempt waiting out its startup + backoff charge.
    Backoff(TaskId),
    Redist {
        src: TaskId,
        succ: TaskId,
    },
}

/// Reusable executor state: the L07 simulator plus every per-run buffer,
/// kept warm across executions.
///
/// Building a fresh [`L07Sim`] (cluster clone + ~100 DES resources) and
/// re-allocating queue/state vectors per execution dominates short runs.
/// A slab amortizes all of it: the simulator is [`L07Sim::reset`] between
/// runs (bit-identical to a fresh build), buffers keep their capacity, and
/// redistribution plans — a pure function of `(n, p_src, p_dst)` for the
/// vanilla block distributions the executor uses — are memoized.
///
/// Results are byte-identical to the slab-free path for any sequence of
/// executions; a slab is plain reusable scratch, not a semantic cache.
#[derive(Debug, Default)]
pub struct ExecSlab {
    /// Rebuilt only when the cluster changes between runs.
    sim: Option<L07Sim>,
    hosts_of: Vec<Vec<HostId>>,
    queue: Vec<Vec<TaskId>>,
    queue_head: Vec<usize>,
    pending_redists: Vec<usize>,
    state: Vec<TaskState>,
    launched: Vec<bool>,
    /// Dense activity-id → meaning map: ids restart at zero every run.
    in_flight: Vec<Option<Meaning>>,
    completions: Vec<mps_l07::PTaskCompletion>,
    src_idx: Vec<usize>,
    dst_idx: Vec<usize>,
    plan_cache: HashMap<(usize, usize, usize), RedistPlan>,
}

impl ExecSlab {
    /// An empty slab; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clears every inner vector (keeping capacity) and sets the outer length.
fn reset_nested<T>(v: &mut Vec<Vec<T>>, len: usize) {
    for inner in v.iter_mut() {
        inner.clear();
    }
    v.resize_with(len, Vec::new);
}

/// Executes `schedule` for `dag` on `cluster` under `model` with the
/// default [`ExecPolicy`].
pub fn execute(
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
) -> Result<ExecutionResult, ExecError> {
    execute_with_policy(dag, cluster, schedule, model, &ExecPolicy::default())
}

/// Executes `schedule` for `dag` on `cluster` under `model` and `policy`.
///
/// When `model` exposes a [`FaultModel`], every task-launch attempt is
/// first submitted to it: a failed attempt charges the startup overhead
/// plus an exponential-backoff wait (both as *simulated* time, while the
/// task's hosts stay claimed) and is retried up to
/// [`ExecPolicy::max_retries`] times before the execution fails with
/// [`ExecError::TaskFailed`]. Redistribution flows are scaled by the fault
/// model's link-degradation factors.
pub fn execute_with_policy(
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
    policy: &ExecPolicy,
) -> Result<ExecutionResult, ExecError> {
    let mut slab = ExecSlab::new();
    execute_with_slab(&mut slab, dag, cluster, schedule, model, policy)
}

/// [`execute_with_policy`] reusing `slab`'s simulator and buffers.
pub fn execute_with_slab(
    slab: &mut ExecSlab,
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
    policy: &ExecPolicy,
) -> Result<ExecutionResult, ExecError> {
    schedule
        .validate(dag, cluster)
        .map_err(|e| ExecError::InvalidSchedule(e.to_string()))?;
    execute_with_slab_prevalidated(slab, dag, cluster, schedule, model, policy)
}

/// [`execute_with_slab`] minus the schedule validation pass.
///
/// The caller promises `schedule.validate(dag, cluster)` holds — e.g. the
/// schedule came straight from a scheduler, or one validation covers many
/// executions of the same schedule (the harness runs each schedule once in
/// the simulator and three times on the testbed).
pub fn execute_with_slab_prevalidated(
    slab: &mut ExecSlab,
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
    policy: &ExecPolicy,
) -> Result<ExecutionResult, ExecError> {
    let n_tasks = dag.len();
    if n_tasks == 0 {
        return Ok(ExecutionResult {
            makespan: 0.0,
            task_spans: Vec::new(),
            task_retries: Vec::new(),
        });
    }

    let ExecSlab {
        sim: sim_slot,
        hosts_of,
        queue,
        queue_head,
        pending_redists,
        state,
        launched,
        in_flight,
        completions,
        src_idx,
        dst_idx,
        plan_cache,
    } = slab;

    let rebuild = match sim_slot {
        Some(s) => s.cluster() != cluster,
        None => true,
    };
    if rebuild {
        *sim_slot = Some(L07Sim::new(cluster.clone()));
    } else {
        sim_slot.as_mut().expect("checked above").reset();
    }
    let sim = sim_slot.as_mut().expect("just ensured");
    sim.set_watchdog(policy.watchdog);

    // Placement lookup.
    reset_nested(hosts_of, n_tasks);
    for st in &schedule.tasks {
        hosts_of[st.task.index()].extend_from_slice(&st.hosts);
    }

    // Per-host task queues in schedule order.
    let n_hosts = cluster.node_count();
    reset_nested(queue, n_hosts);
    for st in &schedule.tasks {
        for h in &st.hosts {
            queue[h.index()].push(st.task);
        }
    }
    queue_head.clear();
    queue_head.resize(n_hosts, 0);

    // Incoming redistributions still pending per task.
    pending_redists.clear();
    pending_redists.extend(dag.task_ids().map(|t| dag.predecessors(t).len()));

    state.clear();
    state.resize(n_tasks, TaskState::Waiting);
    let mut spans = vec![(0.0_f64, 0.0_f64); n_tasks];
    let mut attempts = vec![0u32; n_tasks];
    launched.clear();
    launched.resize(n_tasks, false);
    let mut done_count = 0usize;

    // Maps in-flight simulator activities to what they mean. Activity ids
    // count up densely from zero within a run, so a Vec indexed by
    // [`PTaskId::index`] replaces a hash map.
    in_flight.clear();
    fn insert_in_flight(in_flight: &mut Vec<Option<Meaning>>, id: PTaskId, m: Meaning) {
        let idx = id.index();
        debug_assert_eq!(idx, in_flight.len(), "activity ids must be dense");
        if idx >= in_flight.len() {
            in_flight.resize(idx + 1, None);
        }
        in_flight[idx] = Some(m);
    }

    // Tries to start every eligible waiting task. Returns how many started.
    let try_start = |sim: &mut L07Sim,
                     in_flight: &mut Vec<Option<Meaning>>,
                     state: &mut Vec<TaskState>,
                     spans: &mut Vec<(f64, f64)>,
                     attempts: &mut Vec<u32>,
                     launched: &mut Vec<bool>,
                     queue_head: &[usize],
                     pending_redists: &[usize],
                     model: &mut dyn ExecutionModel|
     -> Result<usize, ExecError> {
        let mut started = 0;
        for st in &schedule.tasks {
            let t = st.task;
            if state[t.index()] != TaskState::Waiting {
                continue;
            }
            if pending_redists[t.index()] > 0 {
                continue;
            }
            let at_head = st
                .hosts
                .iter()
                .all(|h| queue[h.index()].get(queue_head[h.index()]) == Some(&t));
            if !at_head {
                continue;
            }
            // Launch: startup latency + execution. Every attempt —
            // successful or not — pays the startup overhead.
            let kernel = dag.task(t).kernel;
            let p = st.hosts.len();
            let startup = model.startup_overhead(t, p);
            if !launched[t.index()] {
                launched[t.index()] = true;
                spans[t.index()].0 = sim.now();
            }
            let disposition = match model.fault_model() {
                Some(fm) => fm.task_disposition(t, &st.hosts, attempts[t.index()], sim.now()),
                None => TaskDisposition::Run { slowdown: 1.0 },
            };
            let slowdown = match disposition {
                TaskDisposition::Fail { retry_after } => {
                    let attempt = attempts[t.index()];
                    if attempt >= policy.max_retries {
                        return Err(ExecError::TaskFailed {
                            task: t,
                            attempts: attempt + 1,
                        });
                    }
                    attempts[t.index()] = attempt + 1;
                    // The failed attempt is charged as simulated time: its
                    // startup overhead plus the backoff wait (or the time
                    // until a crashed host recovers, whichever is longer).
                    // The task's hosts stay claimed throughout.
                    let backoff = (policy.backoff_base * 2.0_f64.powi(attempt as i32))
                        .min(policy.backoff_cap);
                    let mut spec =
                        PTaskSpec::new().with_extra_latency(startup + backoff.max(retry_after));
                    if sim.tracing_enabled() {
                        spec = spec.with_label(format!("backoff-{}-{}", t.index(), attempt));
                    }
                    let id = sim.submit(spec)?;
                    insert_in_flight(in_flight, id, Meaning::Backoff(t));
                    state[t.index()] = TaskState::Backoff;
                    continue;
                }
                TaskDisposition::Run { slowdown } => slowdown.max(1.0),
            };
            let mut spec = match model.task_execution(t, kernel, &st.hosts) {
                TaskExecution::Analytic => {
                    let flops = kernel.flops_per_proc(p) * slowdown;
                    let comm = kernel.comm_matrix(p);
                    PTaskSpec::compute(&st.hosts, &vec![flops; p])
                        .with_comm_matrix(&st.hosts, &comm)
                        .with_extra_latency(startup)
                }
                TaskExecution::Fixed(duration) => {
                    PTaskSpec::new().with_extra_latency(startup + duration.max(0.0) * slowdown)
                }
            };
            if sim.tracing_enabled() {
                spec = spec.with_label(format!("task-{}", t.index()));
            }
            let id = sim.submit(spec)?;
            insert_in_flight(in_flight, id, Meaning::TaskRun(t));
            state[t.index()] = TaskState::Running;
            started += 1;
        }
        Ok(started)
    };

    try_start(
        sim,
        in_flight,
        state,
        &mut spans,
        &mut attempts,
        launched,
        queue_head,
        pending_redists,
        model,
    )?;

    completions.clear();
    while done_count < n_tasks {
        if !sim.next_completions_into(completions)? {
            return Err(ExecError::Stalled {
                unstarted: state.iter().filter(|&&s| s != TaskState::Done).count(),
            });
        }
        for &c in completions.iter() {
            match in_flight.get_mut(c.task.index()).and_then(Option::take) {
                Some(Meaning::TaskRun(t)) => {
                    state[t.index()] = TaskState::Done;
                    spans[t.index()].1 = c.time;
                    done_count += 1;
                    // Release host queues.
                    for h in &hosts_of[t.index()] {
                        debug_assert_eq!(
                            queue[h.index()][queue_head[h.index()]],
                            t,
                            "queue discipline violated"
                        );
                        queue_head[h.index()] += 1;
                    }
                    // Start redistributions to every successor. The plans
                    // are pure functions of (n, p_src, p_dst) — both sides
                    // always use vanilla block distributions — so they are
                    // memoized in the slab.
                    let src_hosts = &hosts_of[t.index()];
                    let n = dag.task(t).kernel.n();
                    for &succ in dag.successors(t) {
                        let dst_hosts = &hosts_of[succ.index()];
                        let plan = plan_cache
                            .entry((n, src_hosts.len(), dst_hosts.len()))
                            .or_insert_with(|| {
                                RedistPlan::compute(
                                    &BlockDist1D::vanilla(n, src_hosts.len()),
                                    &BlockDist1D::vanilla(n, dst_hosts.len()),
                                )
                            });
                        src_idx.clear();
                        src_idx.extend(src_hosts.iter().map(|h| h.index()));
                        dst_idx.clear();
                        dst_idx.extend(dst_hosts.iter().map(|h| h.index()));
                        let mut flows: Vec<(HostId, HostId, f64)> = plan
                            .network_transfers(src_idx, dst_idx)
                            .into_iter()
                            .map(|(s, d, b)| (HostId(s), HostId(d), b))
                            .collect();
                        let mut overhead = model.redist_overhead(src_hosts.len(), dst_hosts.len());
                        // Degraded links carry more effective bytes; the
                        // protocol overhead stretches with the worst link.
                        if let Some(fm) = model.fault_model() {
                            let now = c.time;
                            let mut worst = 1.0_f64;
                            for (s, d, b) in &mut flows {
                                let factor = fm.link_factor(*s, *d, now).max(1.0);
                                *b *= factor;
                                worst = worst.max(factor);
                            }
                            overhead *= worst;
                        }
                        let mut spec = PTaskSpec::transfers(flows).with_extra_latency(overhead);
                        if sim.tracing_enabled() {
                            spec =
                                spec.with_label(format!("redist-{}-{}", t.index(), succ.index()));
                        }
                        let id = sim.submit(spec)?;
                        insert_in_flight(in_flight, id, Meaning::Redist { src: t, succ });
                    }
                }
                Some(Meaning::Backoff(t)) => {
                    // Backoff elapsed: the task becomes eligible again and
                    // re-attempts on the next dispatch pass (its hosts were
                    // never released).
                    state[t.index()] = TaskState::Waiting;
                }
                Some(Meaning::Redist { succ, .. }) => {
                    pending_redists[succ.index()] -= 1;
                }
                None => unreachable!("unknown completion"),
            }
        }
        try_start(
            sim,
            in_flight,
            state,
            &mut spans,
            &mut attempts,
            launched,
            queue_head,
            pending_redists,
            model,
        )?;
    }

    let makespan = spans.iter().map(|&(_, f)| f).fold(0.0_f64, f64::max);
    Ok(ExecutionResult {
        makespan,
        task_spans: spans,
        task_retries: attempts,
    })
}

// ---- timed platform disturbances + reactive repair ---------------------

use mps_faults::{DisturbReport, Disturbance, DisturbancePlan, RecoveryPolicy};

/// Configuration of one disturbed execution.
pub struct DisturbSetup<'a> {
    /// The scripted platform disturbances.
    pub plan: &'a DisturbancePlan,
    /// Reaction to crashes that strand unfinished tasks.
    pub recovery: RecoveryPolicy,
    /// Simulated seconds charged to every re-planned task before it may
    /// relaunch — the re-plan's cost, accounted as virtual time.
    pub rescue_overhead: f64,
    /// Under [`RecoveryPolicy::Rescue`], produces a replacement schedule
    /// over the surviving hosts (in *original* host-id space, placed only
    /// on the given survivors). `None` / a `None` return fails the
    /// execution typed.
    #[allow(clippy::type_complexity)]
    pub replan: Option<&'a mut dyn FnMut(&[HostId]) -> Option<Schedule>>,
}

/// One expanded plan boundary: the instant an event starts or stops
/// affecting the platform.
#[derive(Debug, Clone, Copy)]
struct Boundary {
    time: f64,
    event: usize,
    opening: bool,
}

fn touches_crashed(hosts: &[HostId], crashed: &[bool]) -> bool {
    hosts.iter().any(|h| crashed[h.index()])
}

/// Submits the redistribution for DAG edge `src → succ` using the tasks'
/// *current* placements. Crashed source hosts are substituted by the
/// source's first surviving host (the durable-replication assumption: a
/// finished task's output can be re-served from any surviving rank); when
/// no source host survives at all, the data re-materializes at the
/// destination instantly and only the protocol overhead is charged.
#[allow(clippy::too_many_arguments)]
fn issue_redist(
    sim: &mut L07Sim,
    model: &mut dyn ExecutionModel,
    plan_cache: &mut HashMap<(usize, usize, usize), RedistPlan>,
    dag: &Dag,
    placements: &[Vec<HostId>],
    crashed: &[bool],
    src: TaskId,
    succ: TaskId,
    in_flight: &mut Vec<Option<Meaning>>,
    live_ids: &mut Vec<PTaskId>,
) -> Result<(), ExecError> {
    let src_hosts = &placements[src.index()];
    let dst_hosts = &placements[succ.index()];
    let n = dag.task(src).kernel.n();
    let mut overhead = model.redist_overhead(src_hosts.len(), dst_hosts.len());
    let replacement = src_hosts.iter().find(|h| !crashed[h.index()]).copied();
    let mut spec = match replacement {
        None if touches_crashed(src_hosts, crashed) => {
            // Every source rank is gone: instantaneous re-materialization.
            PTaskSpec::new().with_extra_latency(overhead)
        }
        _ => {
            let plan = plan_cache
                .entry((n, src_hosts.len(), dst_hosts.len()))
                .or_insert_with(|| {
                    RedistPlan::compute(
                        &BlockDist1D::vanilla(n, src_hosts.len()),
                        &BlockDist1D::vanilla(n, dst_hosts.len()),
                    )
                });
            let src_idx: Vec<usize> = src_hosts
                .iter()
                .map(|h| {
                    if crashed[h.index()] {
                        replacement.expect("some source survives").index()
                    } else {
                        h.index()
                    }
                })
                .collect();
            let dst_idx: Vec<usize> = dst_hosts.iter().map(|h| h.index()).collect();
            let mut flows: Vec<(HostId, HostId, f64)> = plan
                .network_transfers(&src_idx, &dst_idx)
                .into_iter()
                .map(|(s, d, b)| (HostId(s), HostId(d), b))
                .collect();
            if let Some(fm) = model.fault_model() {
                let now = sim.now();
                let mut worst = 1.0_f64;
                for (s, d, b) in &mut flows {
                    let factor = fm.link_factor(*s, *d, now).max(1.0);
                    *b *= factor;
                    worst = worst.max(factor);
                }
                overhead *= worst;
            }
            PTaskSpec::transfers(flows).with_extra_latency(overhead)
        }
    };
    if sim.tracing_enabled() {
        spec = spec.with_label(format!("redist-{}-{}", src.index(), succ.index()));
    }
    let id = sim.submit(spec)?;
    insert_live(in_flight, live_ids, id, Meaning::Redist { src, succ });
    Ok(())
}

fn insert_live(
    in_flight: &mut Vec<Option<Meaning>>,
    live_ids: &mut Vec<PTaskId>,
    id: PTaskId,
    m: Meaning,
) {
    let idx = id.index();
    debug_assert_eq!(idx, in_flight.len(), "activity ids must be dense");
    if idx >= in_flight.len() {
        in_flight.resize(idx + 1, None);
        live_ids.resize(idx + 1, id);
    }
    in_flight[idx] = Some(m);
    live_ids[idx] = id;
}

/// Launch pass for the disturbed executor. Mirrors the undisturbed
/// `try_start` with three additions: placements and dispatch order live
/// in mutable side tables (repair rewrites them), fixed-duration tasks
/// sample the plan's compound slowdown of their hosts at launch (the same
/// launch-sampled semantics `FaultPlan` node slowdowns use), and a
/// re-planned task waits out its `gate` (the rescue overhead, as virtual
/// time) before its attempt starts.
#[allow(clippy::too_many_arguments)]
fn try_start_disturbed(
    sim: &mut L07Sim,
    model: &mut dyn ExecutionModel,
    policy: &ExecPolicy,
    dag: &Dag,
    plan: &DisturbancePlan,
    order: &[TaskId],
    placements: &[Vec<HostId>],
    queue: &[Vec<TaskId>],
    queue_head: &[usize],
    pending: &[usize],
    state: &mut [TaskState],
    spans: &mut [(f64, f64)],
    attempts: &mut [u32],
    launched: &mut [bool],
    gate: &[f64],
    in_flight: &mut Vec<Option<Meaning>>,
    live_ids: &mut Vec<PTaskId>,
) -> Result<(), ExecError> {
    let now = sim.now();
    for &t in order {
        if state[t.index()] != TaskState::Waiting {
            continue;
        }
        if pending[t.index()] > 0 {
            continue;
        }
        let hosts = &placements[t.index()];
        let at_head = hosts
            .iter()
            .all(|h| queue[h.index()].get(queue_head[h.index()]) == Some(&t));
        if !at_head {
            continue;
        }
        let kernel = dag.task(t).kernel;
        let p = hosts.len();
        // A re-planned task first waits out its gate; every attempt also
        // pays the startup overhead.
        let startup = model.startup_overhead(t, p) + (gate[t.index()] - now).max(0.0);
        if !launched[t.index()] {
            launched[t.index()] = true;
            spans[t.index()].0 = now;
        }
        let disposition = match model.fault_model() {
            Some(fm) => fm.task_disposition(t, hosts, attempts[t.index()], now),
            None => TaskDisposition::Run { slowdown: 1.0 },
        };
        let slowdown = match disposition {
            TaskDisposition::Fail { retry_after } => {
                let attempt = attempts[t.index()];
                if attempt >= policy.max_retries {
                    return Err(ExecError::TaskFailed {
                        task: t,
                        attempts: attempt + 1,
                    });
                }
                attempts[t.index()] = attempt + 1;
                let backoff =
                    (policy.backoff_base * 2.0_f64.powi(attempt as i32)).min(policy.backoff_cap);
                let mut spec =
                    PTaskSpec::new().with_extra_latency(startup + backoff.max(retry_after));
                if sim.tracing_enabled() {
                    spec = spec.with_label(format!("backoff-{}-{}", t.index(), attempt));
                }
                let id = sim.submit(spec)?;
                insert_live(in_flight, live_ids, id, Meaning::Backoff(t));
                state[t.index()] = TaskState::Backoff;
                continue;
            }
            TaskDisposition::Run { slowdown } => slowdown.max(1.0),
        };
        let mut spec = match model.task_execution(t, kernel, hosts) {
            TaskExecution::Analytic => {
                // Host slowdowns reach analytic tasks through the engine's
                // scaled capacities — no launch-time factor here.
                let flops = kernel.flops_per_proc(p) * slowdown;
                let comm = kernel.comm_matrix(p);
                PTaskSpec::compute(hosts, &vec![flops; p])
                    .with_comm_matrix(hosts, &comm)
                    .with_extra_latency(startup)
            }
            TaskExecution::Fixed(duration) => {
                let disturb_factor = hosts
                    .iter()
                    .map(|h| plan.slow_factor(h.index(), now))
                    .fold(1.0, f64::max);
                PTaskSpec::new()
                    .with_extra_latency(startup + duration.max(0.0) * slowdown * disturb_factor)
            }
        };
        if sim.tracing_enabled() {
            spec = spec.with_label(format!("task-{}", t.index()));
        }
        let id = sim.submit(spec)?;
        insert_live(in_flight, live_ids, id, Meaning::TaskRun(t));
        state[t.index()] = TaskState::Running;
    }
    Ok(())
}

/// Executes `schedule` under a timed [`DisturbancePlan`], validating it
/// first. See [`execute_disturbed_with_slab_prevalidated`].
#[allow(clippy::too_many_arguments)]
pub fn execute_disturbed_with_slab(
    slab: &mut ExecSlab,
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
    policy: &ExecPolicy,
    setup: DisturbSetup<'_>,
    report: &mut DisturbReport,
) -> Result<ExecutionResult, ExecError> {
    schedule
        .validate(dag, cluster)
        .map_err(|e| ExecError::InvalidSchedule(e.to_string()))?;
    execute_disturbed_with_slab_prevalidated(
        slab, dag, cluster, schedule, model, policy, setup, report,
    )
}

/// Executes `schedule` while the platform is disturbed per `setup.plan`,
/// reacting to crashes with `setup.recovery`.
///
/// Mechanics:
///
/// * every plan boundary (crash instant, window start/end) becomes an
///   engine timer, so the simulator observably stops exactly there;
/// * `Slow` / `Degrade` windows rescale the affected CPU/link capacities
///   through [`Engine::set_capacity`](mps_des::Engine::set_capacity) —
///   in-flight analytic work and transfers stretch mid-run; fixed-duration
///   tasks sample the compound factor of their hosts at launch;
/// * a `Crash` retires the host's resources, cancels every in-flight
///   activity touching it, and triggers the recovery ladder:
///   [`FailFast`](RecoveryPolicy::FailFast) surfaces
///   [`ExecError::HostFailed`]; [`RetryElsewhere`](RecoveryPolicy::RetryElsewhere)
///   patches the stranded tasks' placements onto the lowest-index
///   surviving hosts; [`Rescue`](RecoveryPolicy::Rescue) asks
///   `setup.replan` for a fresh schedule of the surviving platform and
///   adopts its placements and order for every unfinished, not-currently-
///   running task. Repaired tasks pay `setup.rescue_overhead` as extra
///   (virtual) launch latency, and redistributions from finished
///   predecessors are re-issued toward the new placements.
///
/// `report` accrues fired-event and recovery counters even when the
/// execution fails, so callers can assert "failed typed *because* a
/// disturbance fired".
///
/// With an empty plan this path is step-for-step identical to
/// [`execute_with_slab_prevalidated`]; callers preserving the repo's
/// bit-identity contract route empty plans to that function anyway.
#[allow(clippy::too_many_arguments)]
pub fn execute_disturbed_with_slab_prevalidated(
    slab: &mut ExecSlab,
    dag: &Dag,
    cluster: &Cluster,
    schedule: &Schedule,
    model: &mut dyn ExecutionModel,
    policy: &ExecPolicy,
    mut setup: DisturbSetup<'_>,
    report: &mut DisturbReport,
) -> Result<ExecutionResult, ExecError> {
    let n_tasks = dag.len();
    if n_tasks == 0 {
        return Ok(ExecutionResult {
            makespan: 0.0,
            task_spans: Vec::new(),
            task_retries: Vec::new(),
        });
    }
    let plan = setup.plan;

    // The slab contributes its warm simulator and the redist-plan memo;
    // the bookkeeping below is owned, since repair rewrites it wholesale.
    let rebuild = match &slab.sim {
        Some(s) => s.cluster() != cluster,
        None => true,
    };
    if rebuild {
        slab.sim = Some(L07Sim::new(cluster.clone()));
    } else {
        slab.sim.as_mut().expect("checked above").reset();
    }
    let sim = slab.sim.as_mut().expect("just ensured");
    sim.set_watchdog(policy.watchdog);
    let plan_cache = &mut slab.plan_cache;

    let n_hosts = cluster.node_count();
    let mut placements: Vec<Vec<HostId>> = vec![Vec::new(); n_tasks];
    for st in &schedule.tasks {
        placements[st.task.index()] = st.hosts.clone();
    }
    let mut order: Vec<TaskId> = schedule.tasks.iter().map(|st| st.task).collect();
    let mut queue: Vec<Vec<TaskId>> = vec![Vec::new(); n_hosts];
    for &t in &order {
        for h in &placements[t.index()] {
            queue[h.index()].push(t);
        }
    }
    let mut queue_head = vec![0usize; n_hosts];
    let mut pending: Vec<usize> = dag.task_ids().map(|t| dag.predecessors(t).len()).collect();
    let mut arrived = vec![0usize; n_tasks];
    let mut state = vec![TaskState::Waiting; n_tasks];
    let mut spans = vec![(0.0_f64, 0.0_f64); n_tasks];
    let mut attempts = vec![0u32; n_tasks];
    let mut launched = vec![false; n_tasks];
    let mut gate = vec![0.0_f64; n_tasks];
    let mut in_flight: Vec<Option<Meaning>> = Vec::new();
    let mut live_ids: Vec<PTaskId> = Vec::new();
    let mut crashed = vec![false; n_hosts];
    let mut done_count = 0usize;
    let mut completions: Vec<mps_l07::PTaskCompletion> = Vec::new();

    // Expand the plan into time-ordered boundaries and pin an engine
    // timer at each, so steps land exactly on disturbance instants.
    let mut boundaries: Vec<Boundary> = Vec::new();
    for (i, e) in plan.events.iter().enumerate() {
        match *e {
            Disturbance::Crash { at, .. } => boundaries.push(Boundary {
                time: at,
                event: i,
                opening: true,
            }),
            Disturbance::Slow { from, to, .. } | Disturbance::Degrade { from, to, .. } => {
                boundaries.push(Boundary {
                    time: from,
                    event: i,
                    opening: true,
                });
                boundaries.push(Boundary {
                    time: to,
                    event: i,
                    opening: false,
                });
            }
        }
    }
    boundaries.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then(a.opening.cmp(&b.opening))
            .then(a.event.cmp(&b.event))
    });
    for b in &boundaries {
        if b.time > 0.0 {
            sim.schedule_timer(b.time)?;
        }
    }
    let mut next_boundary = 0usize;

    let mut first = true;
    while done_count < n_tasks {
        if !first {
            if !sim.next_completions_into(&mut completions)? {
                return Err(ExecError::Stalled {
                    unstarted: state.iter().filter(|&&s| s != TaskState::Done).count(),
                });
            }
            for &c in completions.iter() {
                match in_flight.get_mut(c.task.index()).and_then(Option::take) {
                    Some(Meaning::TaskRun(t)) => {
                        state[t.index()] = TaskState::Done;
                        spans[t.index()].1 = c.time;
                        done_count += 1;
                        for h in &placements[t.index()] {
                            debug_assert_eq!(
                                queue[h.index()][queue_head[h.index()]],
                                t,
                                "queue discipline violated"
                            );
                            queue_head[h.index()] += 1;
                        }
                        for &succ in dag.successors(t) {
                            issue_redist(
                                sim,
                                model,
                                plan_cache,
                                dag,
                                &placements,
                                &crashed,
                                t,
                                succ,
                                &mut in_flight,
                                &mut live_ids,
                            )?;
                        }
                    }
                    Some(Meaning::Backoff(t)) => {
                        state[t.index()] = TaskState::Waiting;
                    }
                    Some(Meaning::Redist { succ, .. }) => {
                        pending[succ.index()] -= 1;
                        arrived[succ.index()] += 1;
                    }
                    None => unreachable!("unknown completion"),
                }
            }
            if done_count == n_tasks {
                break;
            }
        }
        first = false;

        // Apply every boundary due at (or before) the current instant.
        let now = sim.now();
        while next_boundary < boundaries.len() && boundaries[next_boundary].time <= now + 1e-9 {
            let b = boundaries[next_boundary];
            next_boundary += 1;
            match plan.events[b.event] {
                Disturbance::Slow { host, .. } => {
                    if b.opening {
                        report.slows += 1;
                    }
                    if host < n_hosts {
                        sim.set_host_factor(HostId(host), plan.slow_factor(host, now).max(1.0))?;
                    }
                }
                Disturbance::Degrade { link, .. } => {
                    if b.opening {
                        report.degrades += 1;
                    }
                    if link < n_hosts {
                        sim.set_link_factor(HostId(link), plan.link_factor(link, now).max(1.0))?;
                    }
                }
                Disturbance::Crash { host, .. } => {
                    if host >= n_hosts || crashed[host] {
                        continue;
                    }
                    crashed[host] = true;
                    report.crashes += 1;
                    sim.crash_host(HostId(host))?;

                    // Who is stranded: unfinished tasks placed on a dead
                    // host, plus in-flight redistributions whose endpoints
                    // touch one.
                    let affected: Vec<TaskId> = order
                        .iter()
                        .copied()
                        .filter(|t| {
                            state[t.index()] != TaskState::Done
                                && touches_crashed(&placements[t.index()], &crashed)
                        })
                        .collect();
                    let mut cancelled_redists: Vec<(TaskId, TaskId)> = Vec::new();
                    for idx in 0..in_flight.len() {
                        let cancel = match in_flight[idx] {
                            Some(Meaning::TaskRun(t)) | Some(Meaning::Backoff(t)) => {
                                touches_crashed(&placements[t.index()], &crashed).then(|| {
                                    state[t.index()] = TaskState::Waiting;
                                    attempts[t.index()] += 1;
                                })
                            }
                            Some(Meaning::Redist { src, succ }) => {
                                (touches_crashed(&placements[src.index()], &crashed)
                                    || touches_crashed(&placements[succ.index()], &crashed))
                                .then(|| {
                                    cancelled_redists.push((src, succ));
                                })
                            }
                            None => None,
                        };
                        if cancel.is_some() {
                            sim.cancel(live_ids[idx]);
                            in_flight[idx] = None;
                        }
                    }
                    if affected.is_empty() && cancelled_redists.is_empty() {
                        continue;
                    }

                    let survivors: Vec<HostId> =
                        (0..n_hosts).filter(|&h| !crashed[h]).map(HostId).collect();
                    let failed = || ExecError::HostFailed {
                        host: HostId(host),
                        stranded: affected.len(),
                    };
                    if survivors.is_empty() || setup.recovery == RecoveryPolicy::FailFast {
                        return Err(failed());
                    }

                    // Repair placements (and, under Rescue, the order).
                    let mut changed = vec![false; n_tasks];
                    match setup.recovery {
                        RecoveryPolicy::FailFast => unreachable!("handled above"),
                        RecoveryPolicy::RetryElsewhere => {
                            for &t in &affected {
                                let old = &placements[t.index()];
                                let mut keep: Vec<HostId> = old
                                    .iter()
                                    .copied()
                                    .filter(|h| !crashed[h.index()])
                                    .collect();
                                for &s in &survivors {
                                    if keep.len() == old.len() {
                                        break;
                                    }
                                    if !keep.contains(&s) {
                                        keep.push(s);
                                    }
                                }
                                if keep.len() < old.len() {
                                    return Err(failed());
                                }
                                placements[t.index()] = keep;
                                changed[t.index()] = true;
                                report.retried_tasks += 1;
                            }
                        }
                        RecoveryPolicy::Rescue => {
                            let Some(replan) = setup.replan.as_mut() else {
                                return Err(failed());
                            };
                            let Some(rescue) = replan(&survivors) else {
                                return Err(failed());
                            };
                            // Running/backoff tasks on surviving hosts keep
                            // their placement and precede everything else;
                            // every waiting task adopts the rescue
                            // schedule's placement and order.
                            let mut new_order: Vec<TaskId> = order
                                .iter()
                                .copied()
                                .filter(|t| {
                                    matches!(
                                        state[t.index()],
                                        TaskState::Running | TaskState::Backoff
                                    )
                                })
                                .collect();
                            let mut adopted = 0u64;
                            for st in &rescue.tasks {
                                let t = st.task;
                                if state[t.index()] != TaskState::Waiting {
                                    continue;
                                }
                                if st.hosts.is_empty() || touches_crashed(&st.hosts, &crashed) {
                                    return Err(failed());
                                }
                                if placements[t.index()] != st.hosts {
                                    changed[t.index()] = true;
                                }
                                placements[t.index()] = st.hosts.clone();
                                new_order.push(t);
                                adopted += 1;
                            }
                            // Defensive: a waiting task the rescue schedule
                            // somehow omitted keeps its old placement (it
                            // must still be off the dead hosts).
                            for &t in &order {
                                if state[t.index()] == TaskState::Waiting && !new_order.contains(&t)
                                {
                                    if touches_crashed(&placements[t.index()], &crashed) {
                                        return Err(failed());
                                    }
                                    new_order.push(t);
                                }
                            }
                            order = new_order;
                            report.rescues += 1;
                            report.rescued_tasks += adopted;
                        }
                    }

                    // Re-planned tasks wait out the re-plan cost.
                    for t in 0..n_tasks {
                        if changed[t]
                            || (setup.recovery == RecoveryPolicy::Rescue
                                && state[t] == TaskState::Waiting)
                        {
                            gate[t] = gate[t].max(now + setup.rescue_overhead);
                        }
                    }

                    // Rebuild the host queues over the unfinished tasks in
                    // the (possibly new) dispatch order. Running tasks come
                    // first in `order`, so they sit at their hosts' heads.
                    for q in &mut queue {
                        q.clear();
                    }
                    queue_head.iter_mut().for_each(|h| *h = 0);
                    for &t in &order {
                        if state[t.index()] != TaskState::Done {
                            for h in &placements[t.index()] {
                                queue[h.index()].push(t);
                            }
                        }
                    }

                    // Data plane repair: a task whose placement changed
                    // needs every predecessor's output again at its new
                    // hosts; cancelled transfers to unchanged placements
                    // are simply re-issued.
                    for t in dag.task_ids() {
                        if state[t.index()] == TaskState::Done || !changed[t.index()] {
                            continue;
                        }
                        // A transfer still in flight into `t` targets its old
                        // placement and would double-count against the reset
                        // `pending` once the repair re-issues it below.
                        for idx in 0..in_flight.len() {
                            if let Some(Meaning::Redist { succ, .. }) = in_flight[idx] {
                                if succ == t {
                                    sim.cancel(live_ids[idx]);
                                    in_flight[idx] = None;
                                }
                            }
                        }
                        pending[t.index()] = dag.predecessors(t).len();
                        arrived[t.index()] = 0;
                        for &pred in dag.predecessors(t) {
                            if state[pred.index()] == TaskState::Done {
                                issue_redist(
                                    sim,
                                    model,
                                    plan_cache,
                                    dag,
                                    &placements,
                                    &crashed,
                                    pred,
                                    t,
                                    &mut in_flight,
                                    &mut live_ids,
                                )?;
                            }
                        }
                    }
                    for &(src, succ) in &cancelled_redists {
                        if !changed[succ.index()] && state[succ.index()] != TaskState::Done {
                            issue_redist(
                                sim,
                                model,
                                plan_cache,
                                dag,
                                &placements,
                                &crashed,
                                src,
                                succ,
                                &mut in_flight,
                                &mut live_ids,
                            )?;
                        }
                    }
                }
            }
        }

        try_start_disturbed(
            sim,
            model,
            policy,
            dag,
            plan,
            &order,
            &placements,
            &queue,
            &queue_head,
            &pending,
            &mut state,
            &mut spans,
            &mut attempts,
            &mut launched,
            &gate,
            &mut in_flight,
            &mut live_ids,
        )?;
    }

    let makespan = spans.iter().map(|&(_, f)| f).fold(0.0_f64, f64::max);
    Ok(ExecutionResult {
        makespan,
        task_spans: spans,
        task_retries: attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_kernels::Kernel;
    use mps_model::AnalyticModel;
    use mps_sched::{Hcpa, Schedule, ScheduledTask, Scheduler};

    /// Instrumented model: counts calls, returns fixed quantities.
    struct Counting {
        task_calls: usize,
        startup_calls: usize,
        redist_calls: usize,
        duration: f64,
        startup: f64,
        redist: f64,
    }

    impl Counting {
        fn new(duration: f64, startup: f64, redist: f64) -> Self {
            Counting {
                task_calls: 0,
                startup_calls: 0,
                redist_calls: 0,
                duration,
                startup,
                redist,
            }
        }
    }

    impl ExecutionModel for Counting {
        fn task_execution(
            &mut self,
            _task: TaskId,
            _kernel: Kernel,
            _hosts: &[HostId],
        ) -> TaskExecution {
            self.task_calls += 1;
            TaskExecution::Fixed(self.duration)
        }
        fn startup_overhead(&mut self, _task: TaskId, _p: usize) -> f64 {
            self.startup_calls += 1;
            self.startup
        }
        fn redist_overhead(&mut self, _p_src: usize, _p_dst: usize) -> f64 {
            self.redist_calls += 1;
            self.redist
        }
    }

    fn diamond() -> Dag {
        Dag::new(
            vec![Kernel::MatAdd { n: 2000 }; 4],
            &[
                (TaskId(0), TaskId(1)),
                (TaskId(0), TaskId(2)),
                (TaskId(1), TaskId(3)),
                (TaskId(2), TaskId(3)),
            ],
        )
        .unwrap()
    }

    fn schedule_for(dag: &Dag, cluster: &Cluster) -> Schedule {
        Hcpa.schedule(dag, cluster, &AnalyticModel::paper_jvm())
    }

    #[test]
    fn model_is_consulted_once_per_task_and_edge() {
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let schedule = schedule_for(&dag, &cluster);
        let mut model = Counting::new(1.0, 0.5, 0.1);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert_eq!(model.task_calls, 4);
        assert_eq!(model.startup_calls, 4);
        assert_eq!(model.redist_calls, 4, "one per DAG edge");
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn makespan_decomposes_for_a_serial_chain() {
        // Chain of 3 on one host: makespan = Σ (startup + duration) +
        // redistribution overheads between stages (transfers are local).
        let dag = Dag::new(
            vec![Kernel::MatAdd { n: 2000 }; 3],
            &[(TaskId(0), TaskId(1)), (TaskId(1), TaskId(2))],
        )
        .unwrap();
        let cluster = Cluster::bayreuth();
        let mk = |t: usize| ScheduledTask {
            task: TaskId(t),
            hosts: vec![HostId(0)],
            est_start: t as f64 * 10.0,
            est_finish: (t + 1) as f64 * 10.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0), mk(1), mk(2)],
            est_makespan: 30.0,
        };
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        let expected = 3.0 * (2.0 + 0.5) + 2.0 * 0.25;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn zero_duration_tasks_still_flow_through_dependencies() {
        // All tasks co-located on the same host set: every redistribution
        // is local, so with zero model quantities the whole run collapses
        // to (near) zero time.
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let hosts: Vec<HostId> = (0..4).map(HostId).collect();
        let mk = |t: usize| ScheduledTask {
            task: TaskId(t),
            hosts: hosts.clone(),
            est_start: t as f64,
            est_finish: t as f64 + 1.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0), mk(1), mk(2), mk(3)],
            est_makespan: 4.0,
        };
        let mut model = Counting::new(0.0, 0.0, 0.0);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert!(r.makespan < 1e-9, "makespan {}", r.makespan);
        for &(s, f) in &r.task_spans {
            assert!(f >= s);
        }
    }

    #[test]
    fn spans_respect_dependencies_under_any_positive_quantities() {
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let schedule = schedule_for(&dag, &cluster);
        for (d, su, re) in [(1.0, 0.0, 0.0), (0.5, 2.0, 0.0), (3.0, 0.1, 1.5)] {
            let mut model = Counting::new(d, su, re);
            let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
            for t in dag.task_ids() {
                for &pred in dag.predecessors(t) {
                    assert!(
                        r.task_spans[t.index()].0 >= r.task_spans[pred.index()].1 - 1e-9,
                        "task {t} started before {pred} finished (d={d} su={su} re={re})"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_duration_is_clamped_not_propagated() {
        let dag = Dag::new(vec![Kernel::MatAdd { n: 2000 }], &[]).unwrap();
        let cluster = Cluster::bayreuth();
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![ScheduledTask {
                task: TaskId(0),
                hosts: vec![HostId(0)],
                est_start: 0.0,
                est_finish: 1.0,
            }],
            est_makespan: 1.0,
        };
        struct NanModel;
        impl ExecutionModel for NanModel {
            fn task_execution(&mut self, _t: TaskId, _k: Kernel, _h: &[HostId]) -> TaskExecution {
                TaskExecution::Fixed(f64::NAN)
            }
            fn startup_overhead(&mut self, _t: TaskId, _p: usize) -> f64 {
                0.0
            }
            fn redist_overhead(&mut self, _s: usize, _d: usize) -> f64 {
                0.0
            }
        }
        let r = execute(&dag, &cluster, &schedule, &mut NanModel).unwrap();
        assert!(r.makespan.is_finite());
    }

    // ---- fault injection & resilience ----------------------------------

    use mps_faults::{FaultPlan, ScriptedFaults};

    fn chain_dag() -> Dag {
        Dag::new(
            vec![Kernel::MatAdd { n: 2000 }; 3],
            &[(TaskId(0), TaskId(1)), (TaskId(1), TaskId(2))],
        )
        .unwrap()
    }

    fn chain_schedule(hosts: &[usize]) -> Schedule {
        let hs: Vec<HostId> = hosts.iter().map(|&i| HostId(i)).collect();
        let mk = |t: usize| ScheduledTask {
            task: TaskId(t),
            hosts: hs.clone(),
            est_start: t as f64 * 10.0,
            est_finish: (t + 1) as f64 * 10.0,
        };
        Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0), mk(1), mk(2)],
            est_makespan: 30.0,
        }
    }

    fn faulty(plan: FaultPlan) -> FaultyExecution<Counting> {
        FaultyExecution::new(Counting::new(2.0, 0.5, 0.25), ScriptedFaults::new(plan))
    }

    #[test]
    fn empty_plan_reproduces_the_healthy_execution_exactly() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let mut model = faulty(FaultPlan::none());
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert_eq!(baseline, r);
        assert_eq!(r.total_retries(), 0);
    }

    #[test]
    fn crash_window_delays_execution_via_retries() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        // Host 0 is down from the start for 4 s: task 0's first attempt
        // fails and retries after the node recovers.
        let plan = FaultPlan::builder(1)
            .node_crash(HostId(0), 0.0, 4.0)
            .build();
        let mut model = faulty(plan);
        let policy = ExecPolicy {
            max_retries: 5,
            ..ExecPolicy::default()
        };
        let r = execute_with_policy(&dag, &cluster, &schedule, &mut model, &policy).unwrap();
        assert!(r.task_retries[0] >= 1, "retries: {:?}", r.task_retries);
        assert!(
            r.makespan >= baseline.makespan + 4.0 - 1e-9,
            "makespan {} vs baseline {} + outage",
            r.makespan,
            baseline.makespan
        );
        // Later tasks are pushed back but unaffected otherwise.
        assert_eq!(r.task_retries[1], 0);
        assert_eq!(r.task_retries[2], 0);
    }

    #[test]
    fn certain_launch_failure_exhausts_the_retry_budget() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut model = faulty(FaultPlan::builder(1).task_failure(1.0).build());
        let policy = ExecPolicy {
            max_retries: 2,
            ..ExecPolicy::default()
        };
        let err = execute_with_policy(&dag, &cluster, &schedule, &mut model, &policy).unwrap_err();
        assert_eq!(
            err,
            ExecError::TaskFailed {
                task: TaskId(0),
                attempts: 3
            }
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_is_charged_as_virtual_time() {
        // Two forced failures then success: makespan = healthy makespan
        // + 2 extra startup charges + backoff (0.5 + 1.0).
        struct FailTwice;
        impl FaultModel for FailTwice {
            fn task_disposition(
                &mut self,
                task: TaskId,
                _hosts: &[HostId],
                attempt: u32,
                _now: f64,
            ) -> TaskDisposition {
                if task == TaskId(0) && attempt < 2 {
                    TaskDisposition::Fail { retry_after: 0.0 }
                } else {
                    TaskDisposition::Run { slowdown: 1.0 }
                }
            }
            fn link_factor(&mut self, _s: HostId, _d: HostId, _n: f64) -> f64 {
                1.0
            }
        }
        struct Wrapper {
            inner: Counting,
            faults: FailTwice,
        }
        impl ExecutionModel for Wrapper {
            fn task_execution(&mut self, t: TaskId, k: Kernel, h: &[HostId]) -> TaskExecution {
                self.inner.task_execution(t, k, h)
            }
            fn startup_overhead(&mut self, t: TaskId, p: usize) -> f64 {
                self.inner.startup_overhead(t, p)
            }
            fn redist_overhead(&mut self, s: usize, d: usize) -> f64 {
                self.inner.redist_overhead(s, d)
            }
            fn fault_model(&mut self) -> Option<&mut dyn FaultModel> {
                Some(&mut self.faults)
            }
        }
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let mut model = Wrapper {
            inner: Counting::new(2.0, 0.5, 0.25),
            faults: FailTwice,
        };
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert_eq!(r.task_retries, vec![2, 0, 0]);
        let expected = baseline.makespan + 2.0 * 0.5 + (0.5 + 1.0);
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn stragglers_and_slowdowns_stretch_the_makespan() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let mut model = faulty(FaultPlan::builder(1).straggler(TaskId(1), 3.0).build());
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        // Task 1's 2 s execution becomes 6 s.
        assert!((r.makespan - (baseline.makespan + 4.0)).abs() < 1e-9);
        let mut model = faulty(
            FaultPlan::builder(1)
                .node_slowdown(HostId(0), 0.0, 2.0)
                .build(),
        );
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        // Every task doubles: 3 × 2 s extra.
        assert!((r.makespan - (baseline.makespan + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn link_degradation_slows_cross_host_redistribution() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        // Alternate hosts so every redistribution crosses the network.
        let mk = |t: usize, h: usize| ScheduledTask {
            task: TaskId(t),
            hosts: vec![HostId(h)],
            est_start: t as f64 * 10.0,
            est_finish: (t + 1) as f64 * 10.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0, 0), mk(1, 1), mk(2, 0)],
            est_makespan: 30.0,
        };
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let plan = FaultPlan::builder(1)
            .link_degrade(HostId(1), 0.0, 1.0e9, 4.0)
            .build();
        let mut model = faulty(plan);
        let r = execute(&dag, &cluster, &schedule, &mut model).unwrap();
        assert!(
            r.makespan > baseline.makespan + 1e-6,
            "degraded {} vs healthy {}",
            r.makespan,
            baseline.makespan
        );
    }

    #[test]
    fn watchdog_horizon_converts_runaway_executions_into_timeouts() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let policy = ExecPolicy {
            watchdog: Some(mps_des::Watchdog::horizon(1.0)),
            ..ExecPolicy::default()
        };
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let err = execute_with_policy(&dag, &cluster, &schedule, &mut model, &policy).unwrap_err();
        assert!(matches!(err, ExecError::Timeout { .. }), "{err:?}");
        // A generous horizon lets the same execution finish.
        let policy = ExecPolicy {
            watchdog: Some(mps_des::Watchdog::horizon(1.0e6)),
            ..ExecPolicy::default()
        };
        let mut model = Counting::new(2.0, 0.5, 0.25);
        assert!(execute_with_policy(&dag, &cluster, &schedule, &mut model, &policy).is_ok());
    }

    // ---- timed disturbances & reactive repair ---------------------------

    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn run_disturbed<'a>(
        dag: &Dag,
        cluster: &Cluster,
        schedule: &Schedule,
        model: &mut dyn ExecutionModel,
        plan: &'a DisturbancePlan,
        recovery: RecoveryPolicy,
        rescue_overhead: f64,
        replan: Option<&'a mut dyn FnMut(&[HostId]) -> Option<Schedule>>,
    ) -> (Result<ExecutionResult, ExecError>, DisturbReport) {
        let mut slab = ExecSlab::new();
        let mut report = DisturbReport::default();
        let setup = DisturbSetup {
            plan,
            recovery,
            rescue_overhead,
            replan,
        };
        let r = execute_disturbed_with_slab(
            &mut slab,
            dag,
            cluster,
            schedule,
            model,
            &ExecPolicy::default(),
            setup,
            &mut report,
        );
        (r, report)
    }

    #[test]
    fn zero_event_plan_matches_the_undisturbed_execution_exactly() {
        let dag = diamond();
        let cluster = Cluster::bayreuth();
        let schedule = schedule_for(&dag, &cluster);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let plan = DisturbancePlan::none();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::FailFast,
            0.0,
            None,
        );
        assert_eq!(r.unwrap(), baseline);
        assert_eq!(report.fired(), 0);
    }

    #[test]
    fn a_slow_window_stretches_fixed_tasks_launched_inside_it() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        // Host 0 runs at half speed for the whole execution: each 2 s
        // task takes 4 s; startup and redistribution overheads are
        // protocol time and stay put.
        let plan = DisturbancePlan::builder(1)
            .slow(HostId(0), 0.0, 100.0, 2.0)
            .build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::FailFast,
            0.0,
            None,
        );
        let r = r.unwrap();
        let expected = 3.0 * (0.5 + 4.0) + 2.0 * 0.25;
        assert!(
            (r.makespan - expected).abs() < 1e-9,
            "makespan {} expected {expected}",
            r.makespan
        );
        assert_eq!(report.slows, 1);
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn a_crash_fails_fast_with_a_typed_host_failure() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        // Timeline on host 0: task 0 spans [0, 2.5]; the crash at t=3
        // strands task 1 (running) and task 2 (waiting).
        let plan = DisturbancePlan::builder(1).crash(HostId(0), 3.0).build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::FailFast,
            0.0,
            None,
        );
        match r {
            Err(ExecError::HostFailed { host, stranded }) => {
                assert_eq!(host, HostId(0));
                assert_eq!(stranded, 2);
            }
            other => panic!("expected HostFailed, got {other:?}"),
        }
        // The report still records the fired crash on the error path.
        assert_eq!(report.crashes, 1);
        assert!(report.fired() >= 1);
    }

    #[test]
    fn retry_elsewhere_moves_stranded_tasks_to_surviving_hosts() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let plan = DisturbancePlan::builder(1).crash(HostId(0), 3.0).build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::RetryElsewhere,
            0.0,
            None,
        );
        let r = r.unwrap();
        assert!(
            r.makespan > baseline.makespan,
            "a mid-run crash cannot be free: {} vs {}",
            r.makespan,
            baseline.makespan
        );
        // Task 1 was running when the host died: one burned attempt.
        assert!(r.task_retries[1] >= 1, "retries {:?}", r.task_retries);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.retried_tasks, 2, "tasks 1 and 2 were stranded");
        assert_eq!(report.rescues, 0);
        for t in dag.task_ids() {
            for &pred in dag.predecessors(t) {
                assert!(r.task_spans[t.index()].0 >= r.task_spans[pred.index()].1 - 1e-9);
            }
        }
    }

    #[test]
    fn rescue_replans_onto_survivors_and_charges_the_overhead() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let plan = DisturbancePlan::builder(1).crash(HostId(0), 3.0).build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let mut replans = 0usize;
        let mut replan = |survivors: &[HostId]| -> Option<Schedule> {
            replans += 1;
            assert!(!survivors.contains(&HostId(0)));
            let h = survivors[0];
            let mk = |t: usize| ScheduledTask {
                task: TaskId(t),
                hosts: vec![h],
                est_start: t as f64,
                est_finish: t as f64 + 1.0,
            };
            Some(Schedule {
                algorithm: "rescue".into(),
                tasks: vec![mk(0), mk(1), mk(2)],
                est_makespan: 3.0,
            })
        };
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::Rescue,
            5.0,
            Some(&mut replan),
        );
        let r = r.unwrap();
        assert_eq!(replans, 1);
        assert_eq!(report.rescues, 1);
        assert_eq!(report.rescued_tasks, 2, "tasks 1 and 2 were re-planned");
        // The re-plan is charged as virtual time: the rescued tasks start
        // no earlier than crash + overhead, so the makespan covers the
        // gate plus both remaining tasks.
        let floor = 3.0 + 5.0 + 2.0 * (0.5 + 2.0);
        assert!(
            r.makespan >= floor - 1e-9,
            "makespan {} below rescue floor {floor}",
            r.makespan
        );
        for t in dag.task_ids() {
            for &pred in dag.predecessors(t) {
                assert!(r.task_spans[t.index()].0 >= r.task_spans[pred.index()].1 - 1e-9);
            }
        }
    }

    #[test]
    fn rescue_without_a_replan_hook_fails_typed() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let plan = DisturbancePlan::builder(1).crash(HostId(0), 3.0).build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::Rescue,
            5.0,
            None,
        );
        assert!(matches!(r, Err(ExecError::HostFailed { .. })), "{r:?}");
        assert_eq!(report.crashes, 1);
    }

    #[test]
    fn a_crash_on_an_idle_host_is_counted_but_harmless() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let schedule = chain_schedule(&[0]);
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        // Host 7 never appears in the schedule.
        let plan = DisturbancePlan::builder(1).crash(HostId(7), 1.0).build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::FailFast,
            0.0,
            None,
        );
        let r = r.unwrap();
        assert!((r.makespan - baseline.makespan).abs() < 1e-9);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.retried_tasks, 0);
    }

    #[test]
    fn degrade_windows_stretch_cross_host_redistribution() {
        let dag = chain_dag();
        let cluster = Cluster::bayreuth();
        let mk = |t: usize, h: usize| ScheduledTask {
            task: TaskId(t),
            hosts: vec![HostId(h)],
            est_start: t as f64 * 10.0,
            est_finish: (t + 1) as f64 * 10.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0, 0), mk(1, 1), mk(2, 0)],
            est_makespan: 30.0,
        };
        let mut healthy = Counting::new(2.0, 0.5, 0.25);
        let baseline = execute(&dag, &cluster, &schedule, &mut healthy).unwrap();
        let plan = DisturbancePlan::builder(1)
            .degrade(HostId(1), 0.0, 100.0, 50.0)
            .build();
        let mut model = Counting::new(2.0, 0.5, 0.25);
        let (r, report) = run_disturbed(
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &plan,
            RecoveryPolicy::FailFast,
            0.0,
            None,
        );
        let r = r.unwrap();
        assert!(
            r.makespan > baseline.makespan + 1e-6,
            "degraded {} vs healthy {}",
            r.makespan,
            baseline.makespan
        );
        assert_eq!(report.degrades, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mps_dag::{generate, DagGenParams};
    use mps_model::{AnalyticModel, EmpiricalModel, PerfModel};
    use mps_sched::{Hcpa, Mcpa, Scheduler};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For arbitrary generated DAGs and both algorithms, execution under
        /// a deterministic model yields finite makespans, dependency-ordered
        /// spans, and a makespan at least the longest single task.
        #[test]
        fn execution_invariants(
            tasks in 1usize..14,
            width_exp in 1u32..4,
            ratio in 0.0f64..1.0,
            seed in 0u64..3000,
            use_empirical in any::<bool>(),
        ) {
            let params = DagGenParams {
                tasks,
                input_matrices: 2usize.pow(width_exp),
                add_ratio: ratio,
                matrix_size: 2000,
            };
            let dag = generate(&params, seed);
            let cluster = Cluster::bayreuth();
            for algo in [&Hcpa as &dyn Scheduler, &Mcpa] {
                let (schedule, result) = if use_empirical {
                    let model = EmpiricalModel::table_ii();
                    let schedule = algo.schedule(&dag, &cluster, &model);
                    let mut exec = crate::simulator::ModelExecution::new(model);
                    let result = execute(&dag, &cluster, &schedule, &mut exec).unwrap();
                    (schedule, result)
                } else {
                    let model = AnalyticModel::paper_jvm();
                    let schedule = algo.schedule(&dag, &cluster, &model);
                    let mut exec = crate::simulator::ModelExecution::new(model);
                    let result = execute(&dag, &cluster, &schedule, &mut exec).unwrap();
                    (schedule, result)
                };
                prop_assert!(result.makespan.is_finite() && result.makespan >= 0.0);
                // Dependencies respected.
                for t in dag.task_ids() {
                    let (s, f) = result.task_spans[t.index()];
                    prop_assert!(f >= s - 1e-9);
                    for &pred in dag.predecessors(t) {
                        prop_assert!(s >= result.task_spans[pred.index()].1 - 1e-9);
                    }
                }
                // The makespan covers every span.
                for &(_, f) in &result.task_spans {
                    prop_assert!(result.makespan >= f - 1e-9);
                }
                // Host-exclusivity: tasks sharing a host never overlap.
                for a in &schedule.tasks {
                    for b in &schedule.tasks {
                        if a.task >= b.task {
                            continue;
                        }
                        let share = a.hosts.iter().any(|h| b.hosts.contains(h));
                        if share {
                            let (sa, fa) = result.task_spans[a.task.index()];
                            let (sb, fb) = result.task_spans[b.task.index()];
                            prop_assert!(
                                fa <= sb + 1e-9 || fb <= sa + 1e-9,
                                "overlap: {:?} vs {:?}",
                                (sa, fa),
                                (sb, fb)
                            );
                        }
                    }
                }
                // The model is consulted at least once per task; makespan is
                // bounded below by the longest single task duration.
                let longest = dag
                    .task_ids()
                    .map(|t| {
                        let p = schedule
                            .placement(t)
                            .expect("placed")
                            .p();
                        if use_empirical {
                            EmpiricalModel::table_ii().task_time(dag.task(t).kernel, p)
                        } else {
                            AnalyticModel::paper_jvm().task_time(dag.task(t).kernel, p)
                        }
                    })
                    .fold(0.0_f64, f64::max);
                prop_assert!(result.makespan >= longest * 0.999);
            }
        }
    }
}

#[cfg(test)]
mod repro_review {
    use super::*;
    use mps_faults::{DisturbReport, DisturbancePlan, RecoveryPolicy};
    use mps_kernels::Kernel;
    use mps_sched::{Schedule, ScheduledTask};

    struct PerTask;
    impl ExecutionModel for PerTask {
        fn task_execution(&mut self, task: TaskId, _k: Kernel, _h: &[HostId]) -> TaskExecution {
            TaskExecution::Fixed(if task.index() == 2 { 10.0 } else { 2.0 })
        }
        fn startup_overhead(&mut self, _t: TaskId, _p: usize) -> f64 {
            0.5
        }
        fn redist_overhead(&mut self, _s: usize, _d: usize) -> f64 {
            1.0
        }
    }

    #[test]
    fn stale_redist_after_rescue_replan() {
        // A(0) -> B(1); C(2) independent, long-running on host 0.
        let dag = Dag::new(
            vec![Kernel::MatAdd { n: 2000 }; 3],
            &[(TaskId(0), TaskId(1))],
        )
        .unwrap();
        let cluster = Cluster::bayreuth();
        let mk = |t: usize, h: usize| ScheduledTask {
            task: TaskId(t),
            hosts: vec![HostId(h)],
            est_start: t as f64 * 10.0,
            est_finish: (t + 1) as f64 * 10.0,
        };
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![mk(0, 1), mk(1, 2), mk(2, 0)],
            est_makespan: 1.0,
        };
        // A spans [0, 2.5]; redist A->B in flight from 2.5; crash host 0
        // at 3.0 strands C; rescue moves B to host 3 and C to host 1.
        let plan = DisturbancePlan::builder(1).crash(HostId(0), 3.0).build();
        let mut replan = |survivors: &[HostId]| -> Option<Schedule> {
            assert!(!survivors.contains(&HostId(0)));
            Some(Schedule {
                algorithm: "rescue".into(),
                tasks: vec![mk(1, 3), mk(2, 1)],
                est_makespan: 1.0,
            })
        };
        let mut slab = ExecSlab::new();
        let mut report = DisturbReport::default();
        let mut model = PerTask;
        let r = execute_disturbed_with_slab(
            &mut slab,
            &dag,
            &cluster,
            &schedule,
            &mut model,
            &ExecPolicy::default(),
            DisturbSetup {
                plan: &plan,
                recovery: RecoveryPolicy::Rescue,
                rescue_overhead: 0.0,
                replan: Some(&mut replan),
            },
            &mut report,
        );
        eprintln!("result: {r:?} report: {report:?}");
        r.unwrap();
    }
}
