//! ASCII Gantt charts of executed schedules.
//!
//! Renders one row per host, with each cell showing which task occupied
//! the host at that time — the quickest way to see why two schedules'
//! makespans differ (idle gaps from redistribution waits, serialization
//! from host conflicts, startup overheads).

use mps_sched::Schedule;

use crate::executor::ExecutionResult;

/// Renders a Gantt chart of `result` (per-task spans) against `schedule`
/// (per-task host sets), `width` characters wide.
///
/// Tasks are labelled `0`–`9`, then `a`–`z`, then `*`.
pub fn render_gantt(schedule: &Schedule, result: &ExecutionResult, width: usize) -> String {
    let width = width.max(10);
    let makespan = result.makespan.max(1e-12);
    let n_hosts = schedule
        .tasks
        .iter()
        .flat_map(|st| st.hosts.iter())
        .map(|h| h.index() + 1)
        .max()
        .unwrap_or(0);

    let glyph = |task: usize| -> char {
        match task {
            0..=9 => (b'0' + task as u8) as char,
            10..=35 => (b'a' + (task - 10) as u8) as char,
            _ => '*',
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "Gantt ({} tasks, makespan {:.2} s; '.' = idle)\n",
        schedule.tasks.len(),
        result.makespan
    ));
    for host in 0..n_hosts {
        let mut row = vec!['.'; width];
        for st in &schedule.tasks {
            if !st.hosts.iter().any(|h| h.index() == host) {
                continue;
            }
            let (start, finish) = result.task_spans[st.task.index()];
            let c0 = ((start / makespan) * width as f64).floor() as usize;
            let c1 = ((finish / makespan) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(c1.min(width)).skip(c0.min(width)) {
                *cell = glyph(st.task.index());
            }
        }
        out.push_str(&format!(
            "h{host:<3} {}\n",
            row.into_iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "     0{:>w$}\n",
        format!("{:.1}s", result.makespan),
        w = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dag::TaskId;
    use mps_platform::HostId;
    use mps_sched::ScheduledTask;

    fn schedule_and_result() -> (Schedule, ExecutionResult) {
        let schedule = Schedule {
            algorithm: "test".into(),
            tasks: vec![
                ScheduledTask {
                    task: TaskId(0),
                    hosts: vec![HostId(0), HostId(1)],
                    est_start: 0.0,
                    est_finish: 5.0,
                },
                ScheduledTask {
                    task: TaskId(1),
                    hosts: vec![HostId(1)],
                    est_start: 5.0,
                    est_finish: 10.0,
                },
            ],
            est_makespan: 10.0,
        };
        let result = ExecutionResult {
            makespan: 10.0,
            task_spans: vec![(0.0, 5.0), (5.0, 10.0)],
            task_retries: vec![0, 0],
        };
        (schedule, result)
    }

    #[test]
    fn renders_one_row_per_host() {
        let (s, r) = schedule_and_result();
        let g = render_gantt(&s, &r, 40);
        let rows: Vec<&str> = g.lines().filter(|l| l.starts_with('h')).collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn task_glyphs_occupy_their_spans() {
        let (s, r) = render_input();
        let g = render_gantt(&s, &r, 40);
        let h0: &str = g.lines().find(|l| l.starts_with("h0")).unwrap();
        let h1: &str = g.lines().find(|l| l.starts_with("h1")).unwrap();
        // Host 0 runs task 0 in the first half then idles.
        assert!(h0.contains('0'));
        assert!(h0.contains('.'));
        assert!(!h0.contains('1'));
        // Host 1 runs both tasks back to back.
        assert!(h1.contains('0'));
        assert!(h1.contains('1'));
    }

    fn render_input() -> (Schedule, ExecutionResult) {
        schedule_and_result()
    }

    #[test]
    fn empty_schedule_renders_header_only() {
        let s = Schedule {
            algorithm: "t".into(),
            tasks: vec![],
            est_makespan: 0.0,
        };
        let r = ExecutionResult {
            makespan: 0.0,
            task_spans: vec![],
            task_retries: vec![],
        };
        let g = render_gantt(&s, &r, 30);
        assert!(g.starts_with("Gantt (0 tasks"));
        assert!(!g.lines().any(|l| l.starts_with('h')));
    }

    #[test]
    fn many_tasks_use_letter_glyphs() {
        // Task ids ≥ 10 map to letters.
        let schedule = Schedule {
            algorithm: "t".into(),
            tasks: vec![ScheduledTask {
                task: TaskId(11),
                hosts: vec![HostId(0)],
                est_start: 0.0,
                est_finish: 1.0,
            }],
            est_makespan: 1.0,
        };
        let mut spans = vec![(0.0, 0.0); 12];
        spans[11] = (0.0, 1.0);
        let result = ExecutionResult {
            makespan: 1.0,
            task_spans: spans,
            task_retries: vec![0; 12],
        };
        let g = render_gantt(&schedule, &result, 20);
        assert!(g.contains('b'), "task 11 renders as 'b': {g}");
    }
}
