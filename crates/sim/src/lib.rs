//! # mps-sim — the three simulator versions
//!
//! One schedule-execution engine (host queues + L07 network contention)
//! parameterized by a performance model:
//!
//! * **analytic** simulator (§IV): flop counts and communication matrices
//!   through the L07 engine, no environment overheads;
//! * **profile** simulator (§VI): measured task durations + measured
//!   startup and redistribution overheads;
//! * **empirical** simulator (§VII): regression-model durations and
//!   overheads.
//!
//! The [`executor`] module is also the substrate of the emulated testbed
//! (`mps-testbed`), which injects hidden ground-truth quantities through
//! the same [`ExecutionModel`] interface — so simulators and "experiments"
//! share execution semantics and differ exactly where the paper says they
//! do: in the quantities.

#![warn(missing_docs)]

pub mod executor;
pub mod gantt;
pub mod simulator;

pub use executor::{
    execute, execute_disturbed_with_slab, execute_disturbed_with_slab_prevalidated,
    execute_with_policy, execute_with_slab, execute_with_slab_prevalidated, DisturbSetup,
    ExecError, ExecPolicy, ExecSlab, ExecutionModel, ExecutionResult, FaultyExecution,
    TaskExecution,
};
pub use gantt::render_gantt;
pub use simulator::{ModelExecution, SimOutcome, Simulator};
