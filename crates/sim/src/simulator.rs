//! The three simulator versions: a [`PerfModel`] plugged into the shared
//! schedule executor.
//!
//! `Simulator::schedule_and_simulate` reproduces the paper's §V-A pipeline:
//! the simulator receives a DAG and an algorithm, computes the schedule
//! (under its own model), and reports the simulated makespan. The schedule
//! is then handed to the execution environment (the emulated testbed) for
//! the "experiment" side of each figure.

use mps_dag::{Dag, TaskId};
use mps_kernels::Kernel;
use mps_model::PerfModel;
use mps_platform::{Cluster, HostId};
use mps_sched::{AllocKey, AllocationEngine, Schedule, Scheduler};

use crate::executor::{
    execute, execute_with_slab, ExecError, ExecPolicy, ExecSlab, ExecutionModel, ExecutionResult,
    TaskExecution,
};

/// Adapter: a deterministic [`PerfModel`] as an [`ExecutionModel`].
#[derive(Debug, Clone)]
pub struct ModelExecution<M> {
    model: M,
}

impl<M: PerfModel> ModelExecution<M> {
    /// Wraps a performance model.
    pub fn new(model: M) -> Self {
        ModelExecution { model }
    }
}

impl<M: PerfModel> ExecutionModel for ModelExecution<M> {
    fn task_execution(&mut self, _task: TaskId, kernel: Kernel, hosts: &[HostId]) -> TaskExecution {
        if self.model.simulate_task_analytically() {
            TaskExecution::Analytic
        } else {
            TaskExecution::Fixed(self.model.task_time(kernel, hosts.len()))
        }
    }

    fn startup_overhead(&mut self, _task: TaskId, p: usize) -> f64 {
        self.model.startup_overhead(p)
    }

    fn redist_overhead(&mut self, p_src: usize, p_dst: usize) -> f64 {
        self.model.redist_overhead(p_src, p_dst)
    }
}

/// A simulator: platform + performance model.
#[derive(Debug, Clone)]
pub struct Simulator<M> {
    cluster: Cluster,
    model: M,
}

/// The result of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// The schedule that was simulated.
    pub schedule: Schedule,
    /// The simulated execution.
    pub result: ExecutionResult,
}

impl<M: PerfModel + Clone> Simulator<M> {
    /// Builds a simulator.
    pub fn new(cluster: Cluster, model: M) -> Self {
        Simulator { cluster, model }
    }

    /// The model's name (`analytic`, `profile`, `empirical`).
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// The platform.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Simulates an existing schedule.
    pub fn simulate(&self, dag: &Dag, schedule: &Schedule) -> Result<ExecutionResult, ExecError> {
        let mut exec_model = ModelExecution::new(&self.model);
        execute(dag, &self.cluster, schedule, &mut exec_model)
    }

    /// [`Simulator::simulate`] reusing a caller-owned [`ExecSlab`]:
    /// bit-identical results, but the L07 simulator and executor buffers
    /// stay warm across calls instead of being rebuilt per execution.
    pub fn simulate_with_slab(
        &self,
        slab: &mut ExecSlab,
        dag: &Dag,
        schedule: &Schedule,
    ) -> Result<ExecutionResult, ExecError> {
        let mut exec_model = ModelExecution::new(&self.model);
        execute_with_slab(
            slab,
            dag,
            &self.cluster,
            schedule,
            &mut exec_model,
            &ExecPolicy::default(),
        )
    }

    /// The full §V-A pipeline: schedule with `algorithm` under this model,
    /// then simulate the schedule.
    pub fn schedule_and_simulate(
        &self,
        dag: &Dag,
        algorithm: &dyn Scheduler,
    ) -> Result<SimOutcome, ExecError> {
        let mut engine = AllocationEngine::new();
        self.schedule_and_simulate_with_engine(dag, algorithm, &mut engine)
    }

    /// [`Simulator::schedule_and_simulate`] reusing a caller-owned
    /// [`AllocationEngine`] — bit-identical results (the engine resets per
    /// call), but a warm engine skips the per-request buffer allocations.
    pub fn schedule_and_simulate_with_engine(
        &self,
        dag: &Dag,
        algorithm: &dyn Scheduler,
        engine: &mut AllocationEngine,
    ) -> Result<SimOutcome, ExecError> {
        let schedule = algorithm.schedule_with_engine(dag, &self.cluster, &self.model, engine);
        let result = self.simulate(dag, &schedule)?;
        Ok(SimOutcome { schedule, result })
    }

    /// The fully warmed pipeline: schedule with a caller-owned
    /// [`AllocationEngine`] and simulate in a caller-owned [`ExecSlab`].
    /// Bit-identical to [`Simulator::schedule_and_simulate`].
    pub fn schedule_and_simulate_with_slabs(
        &self,
        dag: &Dag,
        algorithm: &dyn Scheduler,
        engine: &mut AllocationEngine,
        slab: &mut ExecSlab,
    ) -> Result<SimOutcome, ExecError> {
        let schedule = algorithm.schedule_with_engine(dag, &self.cluster, &self.model, engine);
        let result = self.simulate_with_slab(slab, dag, &schedule)?;
        Ok(SimOutcome { schedule, result })
    }

    /// [`Simulator::schedule_and_simulate_with_slabs`] with an
    /// [`AllocKey`]: consecutive calls sharing the key (same DAG, same
    /// model) carry the engine's τ-table across algorithms — bit-identical
    /// outcomes, fewer model evaluations. See
    /// [`mps_sched::AllocationEngine::allocate_keyed`] for the key
    /// contract.
    pub fn schedule_and_simulate_keyed(
        &self,
        dag: &Dag,
        algorithm: &dyn Scheduler,
        key: AllocKey,
        engine: &mut AllocationEngine,
        slab: &mut ExecSlab,
    ) -> Result<SimOutcome, ExecError> {
        let schedule =
            algorithm.schedule_with_keyed_engine(dag, &self.cluster, &self.model, engine, key);
        let result = self.simulate_with_slab(slab, dag, &schedule)?;
        Ok(SimOutcome { schedule, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dag::gen::{paper_corpus, PAPER_CORPUS_SEED};
    use mps_dag::Dag;
    use mps_model::{AnalyticModel, EmpiricalModel};
    use mps_sched::{Hcpa, Mcpa, ScheduledTask};

    fn single_task_dag(n: usize) -> Dag {
        Dag::new(vec![Kernel::MatMul { n }], &[]).unwrap()
    }

    #[test]
    fn analytic_simulation_of_single_serial_task() {
        let dag = single_task_dag(2000);
        let sim = Simulator::new(Cluster::bayreuth(), AnalyticModel::paper_jvm());
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![ScheduledTask {
                task: TaskId(0),
                hosts: vec![HostId(0)],
                est_start: 0.0,
                est_finish: 64.0,
            }],
            est_makespan: 64.0,
        };
        let r = sim.simulate(&dag, &schedule).unwrap();
        // 2·2000³ / 250 MFlop/s = 64 s, no overheads.
        assert!((r.makespan - 64.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn analytic_parallel_task_includes_ring_communication() {
        let dag = single_task_dag(2000);
        let sim = Simulator::new(Cluster::bayreuth(), AnalyticModel::paper_jvm());
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![ScheduledTask {
                task: TaskId(0),
                hosts,
                est_start: 0.0,
                est_finish: 8.0,
            }],
            est_makespan: 8.0,
        };
        let r = sim.simulate(&dag, &schedule).unwrap();
        // CPU-bound at 8 s (see mps-l07 tests); ring comm fits beneath.
        assert!(r.makespan >= 8.0);
        assert!(r.makespan < 8.1, "makespan {}", r.makespan);
    }

    #[test]
    fn empirical_simulation_charges_overheads() {
        let dag = single_task_dag(2000);
        let sim = Simulator::new(Cluster::bayreuth(), EmpiricalModel::table_ii());
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![ScheduledTask {
                task: TaskId(0),
                hosts: vec![HostId(0)],
                est_start: 0.0,
                est_finish: 1.0,
            }],
            est_makespan: 1.0,
        };
        let r = sim.simulate(&dag, &schedule).unwrap();
        // Table II: task time 239.44/2 + 3.43 ≈ 123.15, startup 0.68.
        let expect = 239.44 / 2.0 + 3.43 + 0.68;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn chain_with_redistribution() {
        // t0 (2 hosts) -> t1 (1 host): redistribution moves half the matrix
        // from the non-shared host.
        let dag = Dag::new(
            vec![Kernel::MatMul { n: 2000 }, Kernel::MatAdd { n: 2000 }],
            &[(TaskId(0), TaskId(1))],
        )
        .unwrap();
        let sim = Simulator::new(Cluster::bayreuth(), AnalyticModel::paper_jvm());
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![
                ScheduledTask {
                    task: TaskId(0),
                    hosts: vec![HostId(0), HostId(1)],
                    est_start: 0.0,
                    est_finish: 32.0,
                },
                ScheduledTask {
                    task: TaskId(1),
                    hosts: vec![HostId(0)],
                    est_start: 32.0,
                    est_finish: 40.5,
                },
            ],
            est_makespan: 40.5,
        };
        let r = sim.simulate(&dag, &schedule).unwrap();
        // t0: compute 2n³/2 = 8e9 flops/host → 32 s; ring comm (2 hosts)
        // fits under it? Edge bytes: (p−1)·(n²/p)·8 = 16 MB each way; the
        // backbone carries 32 MB → 0.256 s < 32 s, so t0 = 32 s + latency.
        // redist to host 0: host 1's half (16 MB) over the network ≈
        // 0.128 s + latency. t1: (2000/4)·(2000²/1) flops = 2e9 → 8 s.
        let expect = 32.0 + 0.128 + 8.0;
        assert!(
            (r.makespan - expect).abs() < 0.01,
            "makespan {} vs {expect}",
            r.makespan
        );
        // Spans are ordered.
        assert!(r.task_spans[0].1 <= r.task_spans[1].0 + 1e-9);
    }

    #[test]
    fn full_pipeline_on_corpus_dags() {
        let cluster = Cluster::bayreuth();
        for model_name in ["analytic", "empirical"] {
            for g in paper_corpus(PAPER_CORPUS_SEED).iter().take(6) {
                let outcome = match model_name {
                    "analytic" => Simulator::new(cluster.clone(), AnalyticModel::paper_jvm())
                        .schedule_and_simulate(&g.dag, &Hcpa)
                        .unwrap(),
                    _ => Simulator::new(cluster.clone(), EmpiricalModel::table_ii())
                        .schedule_and_simulate(&g.dag, &Hcpa)
                        .unwrap(),
                };
                assert!(outcome.result.makespan > 0.0);
                assert!(outcome.result.makespan.is_finite());
                // Every task ran.
                assert!(outcome
                    .result
                    .task_spans
                    .iter()
                    .all(|&(s, f)| f >= s && f > 0.0));
            }
        }
    }

    #[test]
    fn hcpa_vs_mcpa_relative_makespans_are_finite_on_corpus() {
        let cluster = Cluster::bayreuth();
        let sim = Simulator::new(cluster, AnalyticModel::paper_jvm());
        let mut diffs = 0;
        for g in paper_corpus(PAPER_CORPUS_SEED).iter().take(10) {
            let h = sim.schedule_and_simulate(&g.dag, &Hcpa).unwrap();
            let m = sim.schedule_and_simulate(&g.dag, &Mcpa).unwrap();
            let rel = (h.result.makespan - m.result.makespan) / m.result.makespan;
            assert!(rel.is_finite());
            if rel.abs() > 1e-9 {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "the two algorithms should differ somewhere");
    }

    #[test]
    fn empty_dag_executes_trivially() {
        let dag = Dag::new(vec![], &[]).unwrap();
        let sim = Simulator::new(Cluster::bayreuth(), AnalyticModel::paper_jvm());
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![],
            est_makespan: 0.0,
        };
        let r = sim.simulate(&dag, &schedule).unwrap();
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let dag = single_task_dag(2000);
        let sim = Simulator::new(Cluster::bayreuth(), AnalyticModel::paper_jvm());
        let schedule = Schedule {
            algorithm: "manual".into(),
            tasks: vec![],
            est_makespan: 0.0,
        };
        assert!(matches!(
            sim.simulate(&dag, &schedule).unwrap_err(),
            ExecError::InvalidSchedule(_)
        ));
    }
}
