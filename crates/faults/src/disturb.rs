//! Timed platform disturbances: the script of what happens to the
//! *platform* (not to individual task attempts), when.
//!
//! A [`FaultPlan`](crate::FaultPlan) perturbs task attempts — a launch
//! fails, a task straggles — while the platform itself holds still. A
//! [`DisturbancePlan`] mutates the platform at simulated time `t`: a host
//! crashes permanently, a host's compute rate drops for a window, a
//! private link degrades for a window. Executors apply these through the
//! DES engine's mid-run capacity mutation (`set_capacity` /
//! `retire_resource`) and react with a recovery ladder (fail fast, retry
//! elsewhere, or rescue-reschedule the unfinished tasks onto the
//! surviving hosts).
//!
//! Plans are deterministic values: built in code
//! ([`DisturbancePlan::builder`]), generated from `(seed, intensity)`
//! ([`DisturbancePlan::random`]), or parsed from a compact CLI grammar
//! ([`DisturbancePlan::parse`]) whose [`Display`](std::fmt::Display)
//! rendering round-trips exactly (f64 `Display` is shortest-round-trip,
//! so `parse(plan.to_string()) == plan`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mps_platform::HostId;

use crate::plan::PlanParseError;

/// Default event horizon (seconds) used by [`DisturbancePlan::with_intensity`];
/// matches the grid horizon `repro` uses for fault presets.
pub const DISTURB_HORIZON: f64 = 120.0;

/// One timed platform disturbance.
///
/// Times are simulated seconds from the start of the execution the plan
/// is applied to; hosts are raw indices so plans stay independent of any
/// particular platform object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Disturbance {
    /// Host `host` fails permanently at time `at`: its compute resource
    /// and private link are retired, in-flight work on it is lost, and
    /// only a recovery policy can finish tasks placed there. Unlike
    /// [`FaultEvent::NodeCrash`](crate::FaultEvent::NodeCrash) this is
    /// not a transient outage — the host never comes back.
    Crash {
        /// Failing host index.
        host: usize,
        /// Failure instant (seconds).
        at: f64,
    },
    /// Host `host` computes `factor`× slower during `[from, to)`
    /// (thermal throttling, a co-scheduled job): its compute capacity is
    /// divided by `factor` for the window.
    Slow {
        /// Affected host index.
        host: usize,
        /// Window start (seconds).
        from: f64,
        /// Window end (seconds).
        to: f64,
        /// Slowdown factor, >= 1.
        factor: f64,
    },
    /// The private link of host `link` carries data `factor`× slower
    /// during `[from, to)`: both its up and down directions lose
    /// bandwidth for the window.
    Degrade {
        /// Host whose up/down link degrades.
        link: usize,
        /// Window start (seconds).
        from: f64,
        /// Window end (seconds).
        to: f64,
        /// Degradation factor, >= 1.
        factor: f64,
    },
}

impl Disturbance {
    /// The instant the disturbance first takes effect.
    pub fn start(&self) -> f64 {
        match *self {
            Disturbance::Crash { at, .. } => at,
            Disturbance::Slow { from, .. } | Disturbance::Degrade { from, .. } => from,
        }
    }
}

/// A deterministic platform-disturbance script: a seed plus timed events.
///
/// The seed names the plan (and drives [`DisturbancePlan::random`]);
/// interpreting a plan involves no further randomness — every capacity
/// change happens at a scripted simulated time, so two executions with
/// the same plan see bit-identical platform behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DisturbancePlan {
    /// Seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The scripted disturbances.
    pub events: Vec<Disturbance>,
}

impl DisturbancePlan {
    /// A plan with no disturbances (executions proceed undisturbed).
    pub fn none() -> Self {
        DisturbancePlan::default()
    }

    /// Starts a builder.
    pub fn builder(seed: u64) -> DisturbancePlanBuilder {
        DisturbancePlanBuilder {
            plan: DisturbancePlan {
                seed,
                ..DisturbancePlan::default()
            },
        }
    }

    /// True when the plan disturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a random plan of the given `intensity` over a platform
    /// of `hosts` nodes and an execution horizon of `horizon` seconds.
    ///
    /// `intensity` scales every disturbance class at once: `0.0` yields
    /// an empty plan, `1.0` a hostile platform (a couple of permanent
    /// host failures, several slow and degraded windows). Deterministic
    /// in `(seed, intensity, hosts, horizon)`.
    pub fn random(seed: u64, intensity: f64, hosts: usize, horizon: f64) -> Self {
        let intensity = intensity.clamp(0.0, 4.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD157_0B01);
        let mut events = Vec::new();
        if intensity > 0.0 && hosts > 0 {
            let span = horizon.max(1.0);
            // Never crash every host: cap failures below the node count so
            // a rescue always has somewhere to go on multi-node platforms.
            let n_crashes = ((intensity * 2.0).round() as usize).min(hosts.saturating_sub(1));
            for _ in 0..n_crashes {
                events.push(Disturbance::Crash {
                    host: rng.gen_range(0..hosts),
                    at: rng.gen_range(0.0..span),
                });
            }
            let n_slow = (intensity * 3.0).round() as usize;
            for _ in 0..n_slow {
                let from = rng.gen_range(0.0..span);
                let len = rng.gen_range(0.05..0.5) * span;
                events.push(Disturbance::Slow {
                    host: rng.gen_range(0..hosts),
                    from,
                    to: from + len,
                    factor: 1.0 + rng.gen_range(0.25..1.5) * intensity,
                });
            }
            let n_degrade = (intensity * 2.0).round() as usize;
            for _ in 0..n_degrade {
                let from = rng.gen_range(0.0..span);
                let len = rng.gen_range(0.05..0.4) * span;
                events.push(Disturbance::Degrade {
                    link: rng.gen_range(0..hosts),
                    from,
                    to: from + len,
                    factor: 1.0 + rng.gen_range(0.5..2.0) * intensity,
                });
            }
        }
        DisturbancePlan { seed, events }
    }

    /// A plan scaled by one knob over the default grid platform (32
    /// hosts, a [`DISTURB_HORIZON`]-second horizon) — the sweep axis of
    /// `repro disturb`. Deterministic and monotone in `intensity`.
    pub fn with_intensity(seed: u64, intensity: f64) -> Self {
        DisturbancePlan::random(seed, intensity, 32, DISTURB_HORIZON)
    }

    /// Parses the compact CLI grammar used by `repro --disturb`.
    ///
    /// Clauses are `;`-separated:
    ///
    /// * `seed=N` — plan seed (defaults to 0);
    /// * `crash@T:H` — host `H` fails permanently at time `T`;
    /// * `slow@T1-T2:H:F` — host `H` computes `F`× slower in `[T1, T2)`;
    /// * `degrade@T1-T2:L:F` — host `L`'s link is `F`× slower in `[T1, T2)`;
    /// * `light` / `moderate` / `heavy` — a [`DisturbancePlan::random`]
    ///   preset (intensity 0.25 / 0.5 / 1.0) over `hosts` nodes and
    ///   `horizon` seconds.
    ///
    /// Example: `seed=7;crash@4:3;slow@2-10:5:1.5;degrade@0-8:1:2`.
    pub fn parse(input: &str, hosts: usize, horizon: f64) -> Result<Self, PlanParseError> {
        let mut plan = DisturbancePlan::none();
        for clause in input.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            plan.parse_clause(clause, hosts, horizon)?;
        }
        Ok(plan)
    }

    fn parse_clause(
        &mut self,
        clause: &str,
        hosts: usize,
        horizon: f64,
    ) -> Result<(), PlanParseError> {
        let err = |what: &str| PlanParseError {
            clause: clause.to_string(),
            reason: what.to_string(),
        };
        let num = |s: &str, what: &str| -> Result<f64, PlanParseError> {
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| err(&format!("{what} `{s}` is not a non-negative number")))
        };
        let idx = |s: &str, what: &str| -> Result<usize, PlanParseError> {
            s.parse::<usize>()
                .map_err(|_| err(&format!("{what} `{s}` is not an index")))
        };
        let factor = |s: &str| -> Result<f64, PlanParseError> {
            let f = num(s, "factor")?;
            if f < 1.0 {
                return Err(err("factor is below 1"));
            }
            Ok(f)
        };
        // `T1-T2`: both ends non-negative, so `-` only ever separates.
        let window = |s: &str| -> Result<(f64, f64), PlanParseError> {
            let (a, b) = s.split_once('-').ok_or_else(|| err("expected `T1-T2`"))?;
            let from = num(a, "window start")?;
            let to = num(b, "window end")?;
            if to < from {
                return Err(err("window ends before it starts"));
            }
            Ok((from, to))
        };

        if let Some(intensity) = match clause {
            "light" => Some(0.25),
            "moderate" => Some(0.5),
            "heavy" => Some(1.0),
            _ => None,
        } {
            let preset = DisturbancePlan::random(self.seed, intensity, hosts, horizon);
            self.events.extend(preset.events);
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("seed=") {
            self.seed = v.parse().map_err(|_| err("seed is not an integer"))?;
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("crash@") {
            let (t, h) = rest.split_once(':').ok_or_else(|| err("expected `T:H`"))?;
            self.events.push(Disturbance::Crash {
                host: idx(h, "host")?,
                at: num(t, "time")?,
            });
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("slow@") {
            let (w, spec) = rest
                .split_once(':')
                .ok_or_else(|| err("expected `T1-T2:H:F`"))?;
            let (h, f) = spec.split_once(':').ok_or_else(|| err("expected `H:F`"))?;
            let (from, to) = window(w)?;
            self.events.push(Disturbance::Slow {
                host: idx(h, "host")?,
                from,
                to,
                factor: factor(f)?,
            });
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("degrade@") {
            let (w, spec) = rest
                .split_once(':')
                .ok_or_else(|| err("expected `T1-T2:L:F`"))?;
            let (l, f) = spec.split_once(':').ok_or_else(|| err("expected `L:F`"))?;
            let (from, to) = window(w)?;
            self.events.push(Disturbance::Degrade {
                link: idx(l, "link")?,
                from,
                to,
                factor: factor(f)?,
            });
            return Ok(());
        }
        Err(err("unknown clause"))
    }
}

impl std::fmt::Display for DisturbancePlan {
    /// Renders the plan in the exact grammar [`DisturbancePlan::parse`]
    /// accepts. f64 `Display` prints the shortest decimal that parses
    /// back to the same bits, so `parse(plan.to_string()) == plan` holds
    /// for every plan whose events came through `parse`, `random`, or
    /// the builder.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for e in &self.events {
            match *e {
                Disturbance::Crash { host, at } => write!(f, ";crash@{at}:{host}")?,
                Disturbance::Slow {
                    host,
                    from,
                    to,
                    factor,
                } => write!(f, ";slow@{from}-{to}:{host}:{factor}")?,
                Disturbance::Degrade {
                    link,
                    from,
                    to,
                    factor,
                } => write!(f, ";degrade@{from}-{to}:{link}:{factor}")?,
            }
        }
        Ok(())
    }
}

impl DisturbancePlan {
    /// The compound compute slowdown of `host` at time `t`: the max
    /// factor over all active `Slow` windows (1.0 when none). Fixed-
    /// duration tasks sample this at launch; analytic tasks stretch
    /// through the engine's capacity scaling instead.
    pub fn slow_factor(&self, host: usize, t: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Disturbance::Slow {
                    host: h,
                    from,
                    to,
                    factor,
                } if h == host && from <= t && t < to => Some(factor),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// The compound link degradation of `host` at time `t`: the max
    /// factor over all active `Degrade` windows (1.0 when none).
    pub fn link_factor(&self, host: usize, t: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Disturbance::Degrade {
                    link,
                    from,
                    to,
                    factor,
                } if link == host && from <= t && t < to => Some(factor),
                _ => None,
            })
            .fold(1.0, f64::max)
    }
}

/// How an executor reacts when a crash strands unfinished tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Surface the crash as a typed error immediately.
    #[default]
    FailFast,
    /// Patch each stranded task's placement in place: dead hosts are
    /// replaced by the lowest-index surviving hosts, everything else —
    /// allocation sizes, execution order — stays as scheduled.
    RetryElsewhere,
    /// Re-invoke the scheduler over the surviving platform for every
    /// unfinished task (moldable re-allocation under contention) and
    /// charge the re-plan as virtual time.
    Rescue,
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryPolicy::FailFast => "failfast",
            RecoveryPolicy::RetryElsewhere => "retry",
            RecoveryPolicy::Rescue => "rescue",
        })
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "failfast" => Ok(RecoveryPolicy::FailFast),
            "retry" => Ok(RecoveryPolicy::RetryElsewhere),
            "rescue" => Ok(RecoveryPolicy::Rescue),
            other => Err(format!(
                "unknown recovery policy `{other}` (expected failfast|retry|rescue)"
            )),
        }
    }
}

/// Per-class counters of disturbances that actually fired during an
/// execution (events scripted past the makespan never fire), plus the
/// recovery actions they triggered. Mirrors [`InjectedIo`](crate::InjectedIo).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisturbReport {
    /// Host crashes applied.
    pub crashes: u64,
    /// Slow windows opened.
    pub slows: u64,
    /// Degrade windows opened.
    pub degrades: u64,
    /// Successful rescue re-plans.
    pub rescues: u64,
    /// Tasks adopted onto a rescue schedule.
    pub rescued_tasks: u64,
    /// Tasks whose placement was patched onto surviving hosts
    /// (`RetryElsewhere`) or whose running attempt a crash cancelled.
    pub retried_tasks: u64,
}

impl DisturbReport {
    /// Total disturbances that fired.
    pub fn fired(&self) -> u64 {
        self.crashes + self.slows + self.degrades
    }

    /// Folds another report into this one.
    pub fn absorb(&mut self, other: &DisturbReport) {
        self.crashes += other.crashes;
        self.slows += other.slows;
        self.degrades += other.degrades;
        self.rescues += other.rescues;
        self.rescued_tasks += other.rescued_tasks;
        self.retried_tasks += other.retried_tasks;
    }
}

/// Builder for hand-written disturbance plans.
#[derive(Debug, Clone)]
pub struct DisturbancePlanBuilder {
    plan: DisturbancePlan,
}

impl DisturbancePlanBuilder {
    /// `host` fails permanently at `at`.
    #[must_use]
    pub fn crash(mut self, host: HostId, at: f64) -> Self {
        self.plan.events.push(Disturbance::Crash {
            host: host.index(),
            at,
        });
        self
    }

    /// `host` computes `factor`× slower during `[from, to)`.
    #[must_use]
    pub fn slow(mut self, host: HostId, from: f64, to: f64, factor: f64) -> Self {
        self.plan.events.push(Disturbance::Slow {
            host: host.index(),
            from,
            to,
            factor,
        });
        self
    }

    /// `host`'s private link is `factor`× slower during `[from, to)`.
    #[must_use]
    pub fn degrade(mut self, host: HostId, from: f64, to: f64, factor: f64) -> Self {
        self.plan.events.push(Disturbance::Degrade {
            link: host.index(),
            from,
            to,
            factor,
        });
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> DisturbancePlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let plan = DisturbancePlan::builder(7)
            .crash(HostId(3), 10.0)
            .slow(HostId(1), 0.0, 5.0, 1.5)
            .degrade(HostId(0), 2.0, 4.0, 2.0)
            .build();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0], Disturbance::Crash { host: 3, at: 10.0 });
    }

    #[test]
    fn parse_accepts_every_clause_kind() {
        let plan = DisturbancePlan::parse(
            "seed=7;crash@4:3;slow@2-10:5:1.5;degrade@0-8:1:2",
            32,
            100.0,
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.events,
            vec![
                Disturbance::Crash { host: 3, at: 4.0 },
                Disturbance::Slow {
                    host: 5,
                    from: 2.0,
                    to: 10.0,
                    factor: 1.5
                },
                Disturbance::Degrade {
                    link: 1,
                    from: 0.0,
                    to: 8.0,
                    factor: 2.0
                },
            ]
        );
    }

    #[test]
    fn presets_expand_to_random_plans() {
        let heavy = DisturbancePlan::parse("heavy", 32, 100.0).unwrap();
        assert!(!heavy.is_empty());
        assert_eq!(
            heavy.events,
            DisturbancePlan::random(0, 1.0, 32, 100.0).events
        );
        let light = DisturbancePlan::parse("light", 32, 100.0).unwrap();
        assert!(light.events.len() < heavy.events.len());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "crash@3",
            "crash@x:1",
            "slow@1:0",
            "slow@5-2:0:1.5", // window ends before it starts
            "slow@0-5:0:0.5", // factor below 1
            "degrade@0-5:0:NaN",
            "wibble",
            "seed=abc",
        ] {
            assert!(
                DisturbancePlan::parse(bad, 8, 10.0).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for plan in [
            DisturbancePlan::none(),
            DisturbancePlan::builder(9)
                .crash(HostId(3), 4.25)
                .slow(HostId(5), 2.0, 10.5, 1.5)
                .degrade(HostId(1), 0.0, 8.125, 2.0)
                .build(),
            DisturbancePlan::random(42, 1.0, 32, 100.0),
            DisturbancePlan::with_intensity(7, 0.5),
        ] {
            let shown = plan.to_string();
            let back = DisturbancePlan::parse(&shown, 32, 100.0).unwrap();
            assert_eq!(back, plan, "`{shown}` did not round-trip");
        }
    }

    #[test]
    fn random_plans_are_deterministic_and_scale_with_intensity() {
        let a = DisturbancePlan::random(5, 1.0, 32, 100.0);
        assert_eq!(a, DisturbancePlan::random(5, 1.0, 32, 100.0));
        assert!(DisturbancePlan::random(5, 0.0, 32, 100.0).is_empty());
        let light = DisturbancePlan::random(5, 0.25, 32, 100.0);
        assert!(light.events.len() < a.events.len());
        for e in &a.events {
            match *e {
                Disturbance::Crash { host, at } => assert!(host < 32 && at >= 0.0),
                Disturbance::Slow {
                    host,
                    from,
                    to,
                    factor,
                } => assert!(host < 32 && to > from && factor > 1.0),
                Disturbance::Degrade {
                    link,
                    from,
                    to,
                    factor,
                } => assert!(link < 32 && to > from && factor > 1.0),
            }
        }
    }

    #[test]
    fn random_never_crashes_every_host() {
        // A 2-node platform at hostile intensity keeps at least one node.
        let plan = DisturbancePlan::random(11, 4.0, 2, 50.0);
        let crashes = plan
            .events
            .iter()
            .filter(|e| matches!(e, Disturbance::Crash { .. }))
            .count();
        assert!(crashes <= 1);
    }

    #[test]
    fn plans_serialize_to_json_and_back() {
        let plan = DisturbancePlan::builder(42).crash(HostId(3), 10.0).build();
        let json = serde_json::to_string(&plan).unwrap();
        let back: DisturbancePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
