//! Interpreting a [`FaultPlan`] during schedule execution.

use mps_dag::TaskId;
use mps_platform::HostId;

use crate::plan::{FaultEvent, FaultPlan};

/// What happens to one task-launch attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskDisposition {
    /// The attempt proceeds; its execution takes `slowdown`× the nominal
    /// duration (`1.0` = unaffected).
    Run {
        /// Duration multiplier (≥ 1 under injected faults).
        slowdown: f64,
    },
    /// The attempt fails. The task may be retried, but not before
    /// `retry_after` seconds have elapsed (time until a crashed host
    /// recovers; `0.0` for instantaneous transient failures).
    Fail {
        /// Minimum wait before the next attempt can succeed (seconds).
        retry_after: f64,
    },
}

/// The hook through which execution consumes injected faults.
///
/// Implemented by [`ScriptedFaults`]; the schedule executor queries it at
/// every task-launch attempt and every redistribution. `&mut self` so
/// implementations may keep caches, but **decisions must be functions of
/// the arguments only** — the executor's event order is not part of the
/// contract, and replay determinism (same plan ⇒ same execution) relies on
/// order independence.
pub trait FaultModel {
    /// Disposition of attempt `attempt` (0-based) of `task` on `hosts`,
    /// launched at simulated time `now`.
    fn task_disposition(
        &mut self,
        task: TaskId,
        hosts: &[HostId],
        attempt: u32,
        now: f64,
    ) -> TaskDisposition;

    /// Effective-byte multiplier for a transfer from `src` to `dst`
    /// starting at `now` (`1.0` = healthy links, > 1 = degraded).
    fn link_factor(&mut self, src: HostId, dst: HostId, now: f64) -> f64;
}

/// The trivial fault model: nothing ever goes wrong.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn task_disposition(
        &mut self,
        _task: TaskId,
        _hosts: &[HostId],
        _attempt: u32,
        _now: f64,
    ) -> TaskDisposition {
        TaskDisposition::Run { slowdown: 1.0 }
    }

    fn link_factor(&mut self, _src: HostId, _dst: HostId, _now: f64) -> f64 {
        1.0
    }
}

/// A [`FaultPlan`] interpreted as a [`FaultModel`].
///
/// Probabilistic decisions (transient task failures) hash
/// `(plan seed, task, attempt)` into a uniform draw instead of consuming a
/// stateful RNG, so the decision for attempt `k` of task `t` is the same
/// no matter how many other tasks were dispatched in between.
#[derive(Debug, Clone)]
pub struct ScriptedFaults {
    plan: FaultPlan,
}

impl ScriptedFaults {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        ScriptedFaults { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Stateless uniform draw in `[0, 1)` for one decision.
    fn decision_unit(&self, a: u64, b: u64) -> f64 {
        // SplitMix64-style finalizer over the (seed, a, b) triple.
        let mut z = self
            .plan
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Latest recovery time over hosts crashed at `now`, if any.
    fn crash_recovery(&self, hosts: &[HostId], now: f64) -> Option<f64> {
        let mut recovery: Option<f64> = None;
        for e in &self.plan.events {
            if let FaultEvent::NodeCrash {
                host,
                from,
                duration,
            } = *e
            {
                let end = from + duration;
                if hosts.iter().any(|h| h.index() == host) && now >= from && now < end {
                    recovery = Some(recovery.map_or(end, |r: f64| r.max(end)));
                }
            }
        }
        recovery
    }
}

impl FaultModel for ScriptedFaults {
    fn task_disposition(
        &mut self,
        task: TaskId,
        hosts: &[HostId],
        attempt: u32,
        now: f64,
    ) -> TaskDisposition {
        // Crashed hosts dominate: the launch cannot reach the node.
        if let Some(recovery) = self.crash_recovery(hosts, now) {
            return TaskDisposition::Fail {
                retry_after: (recovery - now).max(0.0),
            };
        }
        // Transient launch failures: independent per (task, attempt).
        for e in &self.plan.events {
            if let FaultEvent::TaskFailure { prob } = *e {
                if prob > 0.0 && self.decision_unit(task.index() as u64, u64::from(attempt)) < prob
                {
                    return TaskDisposition::Fail { retry_after: 0.0 };
                }
            }
        }
        // Slowdowns compose: a straggler task on a derated node is hit by
        // both. Node slowdown uses the worst factor across the task's
        // hosts (the coupled task advances at the slowest member's pace).
        let mut node_factor = 1.0_f64;
        let mut task_factor = 1.0_f64;
        for e in &self.plan.events {
            match *e {
                FaultEvent::NodeSlowdown { host, from, factor }
                    if now >= from && hosts.iter().any(|h| h.index() == host) =>
                {
                    node_factor = node_factor.max(factor.max(1.0));
                }
                FaultEvent::Straggler { task: t, factor } if t == task.index() => {
                    task_factor *= factor.max(1.0);
                }
                _ => {}
            }
        }
        TaskDisposition::Run {
            slowdown: node_factor * task_factor,
        }
    }

    fn link_factor(&mut self, src: HostId, dst: HostId, now: f64) -> f64 {
        let mut factor = 1.0_f64;
        for e in &self.plan.events {
            if let FaultEvent::LinkDegrade {
                host,
                from,
                duration,
                factor: f,
            } = *e
            {
                if (src.index() == host || dst.index() == host)
                    && now >= from
                    && now < from + duration
                {
                    factor = factor.max(f.max(1.0));
                }
            }
        }
        factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use proptest::prelude::*;

    fn hosts(ids: &[usize]) -> Vec<HostId> {
        ids.iter().map(|&i| HostId(i)).collect()
    }

    #[test]
    fn crash_window_fails_launches_and_reports_recovery() {
        let mut f = ScriptedFaults::new(
            FaultPlan::builder(1)
                .node_crash(HostId(2), 10.0, 5.0)
                .build(),
        );
        // Before and after the window: runs normally.
        for now in [0.0, 9.99, 15.0, 100.0] {
            assert_eq!(
                f.task_disposition(TaskId(0), &hosts(&[2]), 0, now),
                TaskDisposition::Run { slowdown: 1.0 },
                "at t={now}"
            );
        }
        // Inside: fails with the remaining outage as the retry delay.
        match f.task_disposition(TaskId(0), &hosts(&[1, 2]), 0, 12.0) {
            TaskDisposition::Fail { retry_after } => {
                assert!((retry_after - 3.0).abs() < 1e-12)
            }
            d => panic!("expected failure, got {d:?}"),
        }
        // Unaffected hosts run fine during the outage.
        assert_eq!(
            f.task_disposition(TaskId(0), &hosts(&[0, 1]), 0, 12.0),
            TaskDisposition::Run { slowdown: 1.0 }
        );
    }

    #[test]
    fn slowdowns_compose_and_use_the_worst_host() {
        let mut f = ScriptedFaults::new(
            FaultPlan::builder(1)
                .node_slowdown(HostId(0), 0.0, 1.5)
                .node_slowdown(HostId(1), 0.0, 2.0)
                .straggler(TaskId(3), 3.0)
                .build(),
        );
        match f.task_disposition(TaskId(3), &hosts(&[0, 1]), 0, 1.0) {
            TaskDisposition::Run { slowdown } => assert!((slowdown - 6.0).abs() < 1e-12),
            d => panic!("{d:?}"),
        }
        // A different task only sees the node factor.
        match f.task_disposition(TaskId(4), &hosts(&[0]), 0, 1.0) {
            TaskDisposition::Run { slowdown } => assert!((slowdown - 1.5).abs() < 1e-12),
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn link_factor_covers_both_endpoints_and_respects_the_window() {
        let mut f = ScriptedFaults::new(
            FaultPlan::builder(1)
                .link_degrade(HostId(5), 10.0, 10.0, 2.5)
                .build(),
        );
        assert_eq!(f.link_factor(HostId(5), HostId(0), 15.0), 2.5);
        assert_eq!(f.link_factor(HostId(0), HostId(5), 15.0), 2.5);
        assert_eq!(f.link_factor(HostId(0), HostId(1), 15.0), 1.0);
        assert_eq!(f.link_factor(HostId(5), HostId(0), 25.0), 1.0);
    }

    #[test]
    fn failure_rate_tracks_the_configured_probability() {
        let mut f = ScriptedFaults::new(FaultPlan::builder(99).task_failure(0.3).build());
        let n = 4000;
        let failures = (0..n)
            .filter(|&i| {
                matches!(
                    f.task_disposition(TaskId(i), &hosts(&[0]), 0, 0.0),
                    TaskDisposition::Fail { .. }
                )
            })
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed failure rate {rate}");
    }

    #[test]
    fn retries_are_independent_of_the_first_attempt() {
        // With p = 0.5, some task both fails at attempt 0 and succeeds at
        // attempt 1 — decisions are per-(task, attempt), not per-task.
        let mut f = ScriptedFaults::new(FaultPlan::builder(3).task_failure(0.5).build());
        let mut seen_recovering = false;
        for i in 0..200 {
            let a0 = f.task_disposition(TaskId(i), &hosts(&[0]), 0, 0.0);
            let a1 = f.task_disposition(TaskId(i), &hosts(&[0]), 1, 0.0);
            if matches!(a0, TaskDisposition::Fail { .. })
                && matches!(a1, TaskDisposition::Run { .. })
            {
                seen_recovering = true;
            }
        }
        assert!(seen_recovering);
    }

    proptest! {
        /// Same plan, same query ⇒ same answer, regardless of what else was
        /// asked in between (order independence).
        #[test]
        fn decisions_are_order_independent(
            seed in 0u64..1000,
            task in 0usize..64,
            attempt in 0u32..8,
            noise_task in 0usize..64,
        ) {
            let plan = FaultPlan::builder(seed).task_failure(0.4).build();
            let mut a = ScriptedFaults::new(plan.clone());
            let mut b = ScriptedFaults::new(plan);
            let h = hosts(&[0, 1]);
            // `b` answers unrelated queries first.
            for i in 0..5 {
                let _ = b.task_disposition(TaskId(noise_task), &h, i, 3.0);
                let _ = b.link_factor(HostId(0), HostId(1), i as f64);
            }
            prop_assert_eq!(
                a.task_disposition(TaskId(task), &h, attempt, 1.0),
                b.task_disposition(TaskId(task), &h, attempt, 1.0)
            );
        }
    }
}
