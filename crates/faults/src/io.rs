//! Deterministic I/O fault injection: an environment seam under every
//! durability path.
//!
//! The journal, the campaign manifests, and the serve backend all assume
//! `write(2)`, `fdatasync(2)`, and `rename(2)` succeed. This module makes
//! that assumption *testable* instead of implicit:
//!
//! * [`IoEnv`] is the narrow waist — the five filesystem operations the
//!   durability layers actually perform (create, open-for-append, read,
//!   rename, directory sync) plus a short-write-capable file handle
//!   ([`IoFile`]);
//! * [`RealIo`] passes straight through to `std::fs`;
//! * [`ChaosIo`] injects ENOSPC, EIO, short writes, fsync failures, torn
//!   renames, and latency from a seeded [`IoFaultPlan`] — every decision
//!   derives from `splitmix64(seed ^ op-counter)`, so a plan replays
//!   bit-identically;
//! * [`SwitchIo`] is a mutable slot holding an env, so a long-lived
//!   harness can alternate between chaos and real I/O across episodes;
//! * [`ChaosStream`] and [`WireFaultPlan`] do the same for a byte stream:
//!   injected corruption, stalls, and half-closed connections for the
//!   wire protocols.
//!
//! The plans ride the [`FaultPlan`](crate::FaultPlan) grammar: the clause
//! `io:enospc@0.01,shortwrite@0.05` parses into
//! [`FaultPlan::io`](crate::FaultPlan).

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A writable file handle as the durability layers see it: sequential
/// writes plus the three positioning/durability calls resume needs.
pub trait IoFile: Write + Send {
    /// Forces file data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> std::io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
    /// Seeks to the end of the file, returning the new position.
    fn seek_end(&mut self) -> std::io::Result<u64>;
}

impl IoFile for std::fs::File {
    fn sync_data(&mut self) -> std::io::Result<()> {
        std::fs::File::sync_data(self)
    }
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        std::fs::File::set_len(self, len)
    }
    fn seek_end(&mut self) -> std::io::Result<u64> {
        use std::io::Seek;
        self.seek(std::io::SeekFrom::End(0))
    }
}

/// The filesystem operations the durability layers perform. Everything a
/// journal, manifest, or campaign writer touches goes through one of
/// these five calls, so swapping the env swaps the *physics* of the disk.
pub trait IoEnv: Send + Sync {
    /// Creates (or truncates) a file for writing.
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>>;
    /// Opens an existing file for writing without truncating (resume).
    fn open_write(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Syncs a directory so a preceding rename is itself durable.
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
}

/// The passthrough environment: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl IoEnv for RealIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(f))
    }
    fn open_write(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        Ok(Box::new(f))
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        std::fs::File::open(dir)?.sync_all()
    }
}

/// Per-class injection probabilities (and latency) for the I/O layer.
///
/// Probabilities are per *operation*: every create/open/read/write/
/// sync/rename rolls once against its applicable classes. `latency_ms`
/// is applied to every operation unconditionally (keep it small — it
/// bounds wall time, not correctness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct IoFaultPlan {
    /// Probability a write fails with ENOSPC before any byte lands.
    #[serde(default)]
    pub enospc: f64,
    /// Probability an open/read/write fails with EIO.
    #[serde(default)]
    pub eio: f64,
    /// Probability a write lands only a prefix of its buffer, then fails
    /// (a torn line on disk — the crash-mid-write case).
    #[serde(default)]
    pub short_write: f64,
    /// Probability `fdatasync` (file or directory) reports failure. Data
    /// already written stays on disk — the lying-fsync ambiguity.
    #[serde(default)]
    pub fsync_fail: f64,
    /// Probability a rename fails: half the time nothing moved, half the
    /// time the rename happened but the error was reported anyway. The
    /// destination is never left partial — POSIX rename is atomic.
    #[serde(default)]
    pub torn_rename: f64,
    /// Fixed latency injected into every operation, in milliseconds.
    #[serde(default)]
    pub latency_ms: u64,
}

impl IoFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.enospc == 0.0
            && self.eio == 0.0
            && self.short_write == 0.0
            && self.fsync_fail == 0.0
            && self.torn_rename == 0.0
            && self.latency_ms == 0
    }

    /// A plan scaled by one knob: `0.0` injects nothing, `1.0` is a
    /// hostile disk (a few percent of every class per operation).
    /// Deterministic and monotone in `intensity`.
    pub fn with_intensity(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 4.0);
        IoFaultPlan {
            enospc: 0.03 * i,
            eio: 0.03 * i,
            short_write: 0.05 * i,
            fsync_fail: 0.05 * i,
            torn_rename: 0.10 * i,
            latency_ms: 0,
        }
    }

    /// Parses the comma-separated `io:` clause body of the fault-plan
    /// grammar: `enospc@P`, `eio@P`, `shortwrite@P`, `fsync@P`,
    /// `rename@P`, `latency@MS`, or a preset `light`/`moderate`/`heavy`
    /// ([`IoFaultPlan::with_intensity`] 0.25 / 0.5 / 1.0).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = IoFaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(intensity) = match part {
                "light" => Some(0.25),
                "moderate" => Some(0.5),
                "heavy" => Some(1.0),
                _ => None,
            } {
                let preset = IoFaultPlan::with_intensity(intensity);
                plan.enospc = plan.enospc.max(preset.enospc);
                plan.eio = plan.eio.max(preset.eio);
                plan.short_write = plan.short_write.max(preset.short_write);
                plan.fsync_fail = plan.fsync_fail.max(preset.fsync_fail);
                plan.torn_rename = plan.torn_rename.max(preset.torn_rename);
                continue;
            }
            let (knob, value) = part
                .split_once('@')
                .ok_or_else(|| format!("io sub-clause `{part}` is not `knob@value`"))?;
            if knob == "latency" {
                plan.latency_ms = value
                    .parse()
                    .map_err(|_| format!("latency `{value}` is not a millisecond count"))?;
                continue;
            }
            let prob = value
                .parse::<f64>()
                .ok()
                .filter(|p: &f64| p.is_finite() && (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("probability `{value}` is not in [0, 1]"))?;
            match knob {
                "enospc" => plan.enospc = prob,
                "eio" => plan.eio = prob,
                "shortwrite" => plan.short_write = prob,
                "fsync" => plan.fsync_fail = prob,
                "rename" => plan.torn_rename = prob,
                other => return Err(format!("unknown io knob `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Which injected faults actually fired, per class — the chaos driver
/// uses these to prove coverage rather than hope for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedIo {
    /// ENOSPC write failures injected.
    pub enospc: u64,
    /// EIO open/read/write failures injected.
    pub eio: u64,
    /// Short (torn) writes injected.
    pub short_write: u64,
    /// fsync failures injected (file or directory).
    pub fsync_fail: u64,
    /// Torn renames injected.
    pub torn_rename: u64,
}

impl InjectedIo {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.enospc + self.eio + self.short_write + self.fsync_fail + self.torn_rename
    }

    /// Accumulates another count set into this one.
    pub fn absorb(&mut self, other: &InjectedIo) {
        self.enospc += other.enospc;
        self.eio += other.eio;
        self.short_write += other.short_write;
        self.fsync_fail += other.fsync_fail;
        self.torn_rename += other.torn_rename;
    }
}

/// splitmix64: the standard 64-bit finalizer — every chaos decision is a
/// pure function of `(seed, op index)`, independent of wall clock and
/// allocation order.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

struct ChaosState {
    seed: u64,
    plan: IoFaultPlan,
    ops: AtomicU64,
    enospc: AtomicU64,
    eio: AtomicU64,
    short_write: AtomicU64,
    fsync_fail: AtomicU64,
    torn_rename: AtomicU64,
}

impl ChaosState {
    /// One decision draw: consumes an op tick, applies latency, returns
    /// `(uniform in [0,1), raw hash)` — the hash supplies sub-decisions
    /// (short-write length, rename variant).
    fn roll(&self) -> (f64, u64) {
        let i = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.plan.latency_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.plan.latency_ms));
        }
        let h = splitmix64(self.seed ^ (i.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (unit(h), h)
    }
}

/// The adversarial filesystem: wraps [`RealIo`] and injects the plan's
/// fault classes deterministically. Cloning shares the op counter, so a
/// `ChaosIo` and the files it opened draw from one decision sequence.
#[derive(Clone)]
pub struct ChaosIo {
    state: Arc<ChaosState>,
}

impl ChaosIo {
    /// An adversarial env injecting `plan`, seeded by `seed`.
    pub fn new(seed: u64, plan: IoFaultPlan) -> Self {
        ChaosIo {
            state: Arc::new(ChaosState {
                seed,
                plan,
                ops: AtomicU64::new(0),
                enospc: AtomicU64::new(0),
                eio: AtomicU64::new(0),
                short_write: AtomicU64::new(0),
                fsync_fail: AtomicU64::new(0),
                torn_rename: AtomicU64::new(0),
            }),
        }
    }

    /// How many faults have been injected so far, per class.
    pub fn injected(&self) -> InjectedIo {
        InjectedIo {
            enospc: self.state.enospc.load(Ordering::SeqCst),
            eio: self.state.eio.load(Ordering::SeqCst),
            short_write: self.state.short_write.load(Ordering::SeqCst),
            fsync_fail: self.state.fsync_fail.load(Ordering::SeqCst),
            torn_rename: self.state.torn_rename.load(Ordering::SeqCst),
        }
    }

    /// Operations rolled so far (faulted or not).
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    fn open_fault(&self) -> Option<std::io::Error> {
        let (u, _) = self.state.roll();
        if u < self.state.plan.eio {
            self.state.eio.fetch_add(1, Ordering::SeqCst);
            return Some(std::io::Error::other("injected EIO (chaos open)"));
        }
        None
    }
}

struct ChaosFile {
    inner: Box<dyn IoFile>,
    state: Arc<ChaosState>,
}

impl Write for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let (u, h) = self.state.roll();
        let p = &self.state.plan;
        if u < p.enospc {
            self.state.enospc.fetch_add(1, Ordering::SeqCst);
            return Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "injected ENOSPC (chaos write)",
            ));
        }
        if u < p.enospc + p.eio {
            self.state.eio.fetch_add(1, Ordering::SeqCst);
            return Err(std::io::Error::other("injected EIO (chaos write)"));
        }
        if u < p.enospc + p.eio + p.short_write && buf.len() > 1 {
            // Land a prefix, then fail: the on-disk state is a torn
            // write, exactly what a crash mid-`write(2)` leaves behind.
            let cut = 1 + (h as usize) % (buf.len() - 1);
            self.inner.write_all(&buf[..cut])?;
            let _ = self.inner.flush();
            self.state.short_write.fetch_add(1, Ordering::SeqCst);
            return Err(std::io::Error::other(format!(
                "injected short write (chaos): {cut} of {} bytes landed",
                buf.len()
            )));
        }
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl IoFile for ChaosFile {
    fn sync_data(&mut self) -> std::io::Result<()> {
        let (u, _) = self.state.roll();
        if u < self.state.plan.fsync_fail {
            self.state.fsync_fail.fetch_add(1, Ordering::SeqCst);
            // The data may in fact be durable — fsync failure reports
            // are ambiguous, and callers must treat them as fatal.
            return Err(std::io::Error::other("injected fsync failure (chaos)"));
        }
        self.inner.sync_data()
    }
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.inner.set_len(len)
    }
    fn seek_end(&mut self) -> std::io::Result<u64> {
        self.inner.seek_end()
    }
}

impl IoEnv for ChaosIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        if let Some(e) = self.open_fault() {
            return Err(e);
        }
        Ok(Box::new(ChaosFile {
            inner: RealIo.create(path)?,
            state: Arc::clone(&self.state),
        }))
    }
    fn open_write(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        if let Some(e) = self.open_fault() {
            return Err(e);
        }
        Ok(Box::new(ChaosFile {
            inner: RealIo.open_write(path)?,
            state: Arc::clone(&self.state),
        }))
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let (u, _) = self.state.roll();
        if u < self.state.plan.eio {
            self.state.eio.fetch_add(1, Ordering::SeqCst);
            return Err(std::io::Error::other("injected EIO (chaos read)"));
        }
        RealIo.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        let (u, h) = self.state.roll();
        if u < self.state.plan.torn_rename {
            self.state.torn_rename.fetch_add(1, Ordering::SeqCst);
            // rename(2) is atomic: the failure modes are "nothing moved"
            // and "it moved but the caller saw an error" (crash between
            // rename and ack). A partial destination is *not* a mode.
            if h & (1 << 60) != 0 {
                RealIo.rename(from, to)?;
            }
            return Err(std::io::Error::other("injected torn rename (chaos)"));
        }
        RealIo.rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        let (u, _) = self.state.roll();
        if u < self.state.plan.fsync_fail {
            self.state.fsync_fail.fetch_add(1, Ordering::SeqCst);
            return Err(std::io::Error::other("injected dir-sync failure (chaos)"));
        }
        RealIo.sync_dir(dir)
    }
}

/// A mutable env slot: delegates every call to the env it currently
/// holds. Long-lived owners (a harness, a daemon backend) hold a
/// `SwitchIo` once; a chaos driver flips it between [`ChaosIo`] episodes
/// and [`RealIo`] verification phases without rebuilding the owner.
pub struct SwitchIo {
    inner: Mutex<Arc<dyn IoEnv>>,
}

impl SwitchIo {
    /// A slot initially holding `env`.
    pub fn new(env: Arc<dyn IoEnv>) -> Self {
        SwitchIo {
            inner: Mutex::new(env),
        }
    }

    /// Replaces the env. Files opened through the previous env keep
    /// their old physics; subsequent operations use the new one.
    pub fn set(&self, env: Arc<dyn IoEnv>) {
        *self.inner.lock().unwrap() = env;
    }

    fn current(&self) -> Arc<dyn IoEnv> {
        Arc::clone(&self.inner.lock().unwrap())
    }
}

impl Default for SwitchIo {
    fn default() -> Self {
        SwitchIo::new(Arc::new(RealIo))
    }
}

impl IoEnv for SwitchIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        self.current().create(path)
    }
    fn open_write(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        self.current().open_write(path)
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.current().read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.current().rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.current().sync_dir(dir)
    }
}

/// Per-class injection probabilities for a byte stream (the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WireFaultPlan {
    /// Probability a read/write has one byte corrupted (bit flip).
    #[serde(default)]
    pub corrupt: f64,
    /// Probability an operation stalls for `stall_ms` first.
    #[serde(default)]
    pub stall: f64,
    /// Stall length, milliseconds.
    #[serde(default)]
    pub stall_ms: u64,
    /// Probability the connection half-closes: reads return EOF (even
    /// mid-frame), writes fail with broken pipe.
    #[serde(default)]
    pub close: f64,
}

impl WireFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.corrupt == 0.0 && self.stall == 0.0 && self.close == 0.0
    }

    /// A plan scaled by one knob, like [`IoFaultPlan::with_intensity`].
    pub fn with_intensity(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 4.0);
        WireFaultPlan {
            corrupt: 0.05 * i,
            stall: 0.05 * i,
            stall_ms: 20,
            close: 0.02 * i,
        }
    }
}

/// Which wire faults actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedWire {
    /// Corrupted operations.
    pub corrupt: u64,
    /// Injected stalls.
    pub stall: u64,
    /// Injected half-closes.
    pub close: u64,
}

impl InjectedWire {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.corrupt + self.stall + self.close
    }

    /// Accumulates another count set into this one.
    pub fn absorb(&mut self, other: &InjectedWire) {
        self.corrupt += other.corrupt;
        self.stall += other.stall;
        self.close += other.close;
    }
}

struct WireState {
    seed: u64,
    plan: WireFaultPlan,
    ops: AtomicU64,
    corrupt: AtomicU64,
    stall: AtomicU64,
    close: AtomicU64,
}

/// An adversarial transport: wraps any `Read + Write` stream and injects
/// the plan's wire faults deterministically (per operation — byte
/// positions within an op derive from the op hash).
pub struct ChaosStream<S> {
    inner: S,
    state: WireState,
    closed: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, injecting `plan` seeded by `seed`.
    pub fn new(inner: S, seed: u64, plan: WireFaultPlan) -> Self {
        ChaosStream {
            inner,
            state: WireState {
                seed,
                plan,
                ops: AtomicU64::new(0),
                corrupt: AtomicU64::new(0),
                stall: AtomicU64::new(0),
                close: AtomicU64::new(0),
            },
            closed: false,
        }
    }

    /// How many wire faults have been injected so far, per class.
    pub fn injected(&self) -> InjectedWire {
        InjectedWire {
            corrupt: self.state.corrupt.load(Ordering::SeqCst),
            stall: self.state.stall.load(Ordering::SeqCst),
            close: self.state.close.load(Ordering::SeqCst),
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn roll(&self) -> (f64, u64) {
        let i = self.state.ops.fetch_add(1, Ordering::SeqCst);
        let h =
            splitmix64(self.state.seed ^ (i.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (unit(h), h)
    }

    fn maybe_stall(&self, u: f64) {
        if u < self.state.plan.stall {
            self.state.stall.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(self.state.plan.stall_ms));
        }
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.closed {
            return Ok(0);
        }
        let (u, h) = self.roll();
        let p = &self.state.plan;
        if u < p.close {
            // Half-close: the peer vanished; all further reads are EOF —
            // possibly mid-frame, which readers must report typed.
            self.state.close.fetch_add(1, Ordering::SeqCst);
            self.closed = true;
            return Ok(0);
        }
        self.maybe_stall(u);
        let n = self.inner.read(buf)?;
        if n > 0 && u >= p.close && u < p.close + p.corrupt {
            self.state.corrupt.fetch_add(1, Ordering::SeqCst);
            let at = (h >> 8) as usize % n;
            buf[at] ^= 1 << ((h >> 3) & 7);
        }
        Ok(n)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected half-close (chaos)",
            ));
        }
        let (u, h) = self.roll();
        let p = &self.state.plan;
        if u < p.close {
            self.state.close.fetch_add(1, Ordering::SeqCst);
            self.closed = true;
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected half-close (chaos)",
            ));
        }
        self.maybe_stall(u);
        if !buf.is_empty() && u >= p.close && u < p.close + p.corrupt {
            self.state.corrupt.fetch_add(1, Ordering::SeqCst);
            let mut copy = buf.to_vec();
            let at = (h >> 8) as usize % copy.len();
            copy[at] ^= 1 << ((h >> 3) & 7);
            self.inner.write_all(&copy)?;
            return Ok(buf.len());
        }
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        if self.closed {
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mps-faults-io-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_round_trips() {
        let dir = scratch("real");
        let path = dir.join("f.txt");
        let mut f = RealIo.create(&path).unwrap();
        f.write_all(b"hello\n").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(RealIo.read(&path).unwrap(), b"hello\n");
        let to = dir.join("g.txt");
        RealIo.rename(&path, &to).unwrap();
        RealIo.sync_dir(&dir).unwrap();
        assert_eq!(RealIo.read(&to).unwrap(), b"hello\n");
        let mut f = RealIo.open_write(&to).unwrap();
        assert_eq!(f.seek_end().unwrap(), 6);
        f.set_len(5).unwrap();
        drop(f);
        assert_eq!(RealIo.read(&to).unwrap(), b"hello");
    }

    /// The same seeded plan replays the identical fault sequence for the
    /// identical op sequence — the bedrock of reproducible chaos runs.
    fn fault_trace(seed: u64) -> Vec<String> {
        let dir = scratch(&format!("det-{seed}"));
        let env = ChaosIo::new(seed, IoFaultPlan::with_intensity(1.0));
        let mut trace = Vec::new();
        for round in 0..30 {
            let path = dir.join(format!("f{round}"));
            match env.create(&path) {
                Err(e) => trace.push(format!("create:{e}")),
                Ok(mut f) => {
                    match f.write(b"0123456789abcdef") {
                        Err(e) => trace.push(format!("write:{e}")),
                        Ok(n) => trace.push(format!("wrote:{n}")),
                    }
                    match f.sync_data() {
                        Err(e) => trace.push(format!("sync:{e}")),
                        Ok(()) => trace.push("synced".to_string()),
                    }
                }
            }
        }
        trace
    }

    #[test]
    fn chaos_decisions_are_deterministic_in_the_seed() {
        assert_eq!(fault_trace(42), fault_trace(42));
        assert_ne!(fault_trace(42), fault_trace(43), "seeds must matter");
        let env = ChaosIo::new(42, IoFaultPlan::with_intensity(1.0));
        assert_eq!(env.injected(), InjectedIo::default());
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let dir = scratch("empty");
        let env = ChaosIo::new(1, IoFaultPlan::default());
        for i in 0..50 {
            let path = dir.join(format!("f{i}"));
            let mut f = env.create(&path).unwrap();
            f.write_all(b"data").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(env.injected().total(), 0);
        assert!(env.ops() > 0);
    }

    #[test]
    fn short_writes_land_a_prefix_then_fail() {
        let dir = scratch("short");
        let plan = IoFaultPlan {
            short_write: 1.0,
            ..IoFaultPlan::default()
        };
        let env = ChaosIo::new(7, plan);
        let path = dir.join("f");
        let mut f = env.create(&path).unwrap();
        let err = f.write(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("short write"));
        drop(f);
        let on_disk = RealIo.read(&path).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < 10, "prefix landed");
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
        assert_eq!(env.injected().short_write, 1);
    }

    #[test]
    fn torn_rename_never_leaves_a_partial_destination() {
        let dir = scratch("rename");
        let plan = IoFaultPlan {
            torn_rename: 1.0,
            ..IoFaultPlan::default()
        };
        for seed in 0..16u64 {
            let env = ChaosIo::new(seed, plan.clone());
            let from = dir.join(format!("tmp{seed}"));
            let to = dir.join(format!("final{seed}"));
            std::fs::write(&from, b"full contents").unwrap();
            let err = env.rename(&from, &to).unwrap_err();
            assert!(err.to_string().contains("torn rename"));
            // Either the rename happened wholly or not at all.
            match RealIo.read(&to) {
                Ok(data) => assert_eq!(data, b"full contents"),
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
                    assert_eq!(RealIo.read(&from).unwrap(), b"full contents");
                }
            }
        }
    }

    #[test]
    fn switch_io_redirects_subsequent_operations() {
        let dir = scratch("switch");
        let sw = SwitchIo::default();
        let path = dir.join("f");
        let mut f = sw.create(&path).unwrap();
        f.write_all(b"real").unwrap();
        drop(f);
        let all_fail = IoFaultPlan {
            eio: 1.0,
            ..IoFaultPlan::default()
        };
        sw.set(Arc::new(ChaosIo::new(1, all_fail)));
        assert!(sw.read(&path).is_err(), "chaos now in charge");
        sw.set(Arc::new(RealIo));
        assert_eq!(sw.read(&path).unwrap(), b"real");
    }

    #[test]
    fn chaos_stream_half_close_is_eof_then_broken_pipe() {
        let plan = WireFaultPlan {
            close: 1.0,
            ..WireFaultPlan::default()
        };
        let mut s = ChaosStream::new(std::io::Cursor::new(b"payload".to_vec()), 3, plan);
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0, "EOF mid-stream");
        assert_eq!(s.read(&mut buf).unwrap(), 0, "EOF is sticky");
        assert_eq!(
            s.write(b"x").unwrap_err().kind(),
            std::io::ErrorKind::BrokenPipe
        );
        assert_eq!(s.injected().close, 1);
    }

    #[test]
    fn chaos_stream_corrupts_exactly_one_byte_per_faulted_op() {
        let plan = WireFaultPlan {
            corrupt: 1.0,
            ..WireFaultPlan::default()
        };
        let payload = b"the quick brown fox".to_vec();
        let mut s = ChaosStream::new(std::io::Cursor::new(payload.clone()), 9, plan);
        let mut buf = vec![0u8; payload.len()];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(n, payload.len());
        let diff: Vec<usize> = (0..n).filter(|&i| buf[i] != payload[i]).collect();
        assert_eq!(diff.len(), 1, "exactly one corrupted byte");
        assert!(s.injected().corrupt >= 1);
    }

    #[test]
    fn io_plan_parse_accepts_the_documented_grammar() {
        let p = IoFaultPlan::parse("enospc@0.01,shortwrite@0.05,latency@5").unwrap();
        assert_eq!(p.enospc, 0.01);
        assert_eq!(p.short_write, 0.05);
        assert_eq!(p.latency_ms, 5);
        assert_eq!(p.eio, 0.0);
        let preset = IoFaultPlan::parse("heavy").unwrap();
        assert_eq!(preset, IoFaultPlan::with_intensity(1.0));
        for bad in ["enospc@1.5", "wibble@0.1", "enospc", "latency@x", "eio@-1"] {
            assert!(IoFaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn intensity_zero_is_empty_and_scaling_is_monotone() {
        assert!(IoFaultPlan::with_intensity(0.0).is_empty());
        assert!(WireFaultPlan::with_intensity(0.0).is_empty());
        let lo = IoFaultPlan::with_intensity(0.25);
        let hi = IoFaultPlan::with_intensity(1.0);
        assert!(lo.enospc < hi.enospc && lo.torn_rename < hi.torn_rename);
    }
}
