//! # mps-faults — seeded, scripted fault injection
//!
//! The paper's experiments ran on a real cluster, where nodes slow down,
//! crash and recover, links degrade, and task launches fail. This crate
//! models those hazards as a deterministic, seedable **fault plan** that
//! the schedule executor (`mps-sim`) and the emulated testbed
//! (`mps-testbed`) consume through the [`FaultModel`] hook:
//!
//! * a [`FaultPlan`] is a script of [`FaultEvent`]s — permanent node
//!   slowdowns, transient node crash-and-recover windows, link
//!   degradation windows, straggler tasks, and a transient task-failure
//!   probability;
//! * plans are built in code ([`FaultPlan::builder`]), generated from a
//!   seed and an intensity ([`FaultPlan::random`]), or parsed from the
//!   compact CLI grammar ([`FaultPlan::parse`]) used by `repro --faults`;
//! * [`ScriptedFaults`] turns a plan into a [`FaultModel`]: every
//!   stochastic decision derives its randomness by *hashing*
//!   `(plan seed, task, attempt)` rather than consuming a shared stream,
//!   so outcomes are independent of executor event order — the bedrock of
//!   the bit-identical-replay guarantee tested in
//!   `tests/simulation_fidelity.rs`.
//!
//! ```
//! use mps_faults::{FaultPlan, ScriptedFaults, FaultModel, TaskDisposition};
//! use mps_dag::TaskId;
//! use mps_platform::HostId;
//!
//! let plan = FaultPlan::builder(42)
//!     .node_crash(HostId(3), 10.0, 5.0)
//!     .task_failure(0.05)
//!     .build();
//! let mut faults = ScriptedFaults::new(plan);
//! // Host 3 is down during [10, 15): launching there reports a failure
//! // with the time until recovery.
//! match faults.task_disposition(TaskId(0), &[HostId(3)], 0, 12.0) {
//!     TaskDisposition::Fail { retry_after } => assert!((retry_after - 3.0).abs() < 1e-12),
//!     d => panic!("expected failure, got {d:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod disturb;
pub mod io;
pub mod model;
pub mod plan;

pub use disturb::{
    DisturbReport, Disturbance, DisturbancePlan, DisturbancePlanBuilder, RecoveryPolicy,
    DISTURB_HORIZON,
};
pub use io::{
    ChaosIo, ChaosStream, InjectedIo, InjectedWire, IoEnv, IoFaultPlan, IoFile, RealIo, SwitchIo,
    WireFaultPlan,
};
pub use model::{FaultModel, NoFaults, ScriptedFaults, TaskDisposition};
pub use plan::{FaultEvent, FaultPlan, FaultPlanBuilder, PlanParseError};
