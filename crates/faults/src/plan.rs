//! Fault plans: the script of what goes wrong, when.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mps_dag::TaskId;
use mps_platform::HostId;

/// One scripted hazard.
///
/// Times are simulated seconds from the start of the execution the plan is
/// applied to; hosts and tasks are raw indices so plans stay independent of
/// any particular platform or DAG object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// From `from` on, every task using `host` runs `factor`× slower
    /// (permanent degradation — a thermally throttled or oversubscribed
    /// node).
    NodeSlowdown {
        /// Affected host index.
        host: usize,
        /// Start of the degradation (seconds).
        from: f64,
        /// Duration multiplier, > 1 slows the node down.
        factor: f64,
    },
    /// `host` is unreachable during `[from, from + duration)`: task
    /// launches there fail and must be retried after recovery.
    NodeCrash {
        /// Affected host index.
        host: usize,
        /// Crash instant (seconds).
        from: f64,
        /// Outage length (seconds); the node recovers afterwards.
        duration: f64,
    },
    /// The private link of `host` carries `factor`× the effective bytes
    /// during `[from, from + duration)` (congestion, renegotiated rate).
    LinkDegrade {
        /// Host whose up/down link degrades.
        host: usize,
        /// Start of the window (seconds).
        from: f64,
        /// Window length (seconds).
        duration: f64,
        /// Byte multiplier, > 1 slows transfers through the link.
        factor: f64,
    },
    /// Task `task` is a straggler: its execution takes `factor`× longer
    /// wherever and whenever it runs.
    Straggler {
        /// Affected task index.
        task: usize,
        /// Duration multiplier, > 1.
        factor: f64,
    },
    /// Every task-launch attempt independently fails with probability
    /// `prob` (lost launch message, JVM spawn failure). Decisions are
    /// derived from the plan seed per `(task, attempt)`.
    TaskFailure {
        /// Per-attempt failure probability in `[0, 1]`.
        prob: f64,
    },
}

/// A deterministic fault script: a seed plus a list of events.
///
/// The seed drives every probabilistic decision made while the plan is
/// interpreted (see [`ScriptedFaults`](crate::ScriptedFaults)); two
/// executions with the same plan see bit-identical fault behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed for per-decision randomness.
    pub seed: u64,
    /// The scripted events.
    pub events: Vec<FaultEvent>,
    /// Environment (filesystem) faults injected under the durability
    /// paths — see [`crate::io::ChaosIo`]. Parsed from the `io:` clause.
    #[serde(default)]
    pub io: crate::io::IoFaultPlan,
}

impl FaultPlan {
    /// A plan with no events (executions proceed unfaulted).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Starts a builder.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan {
                seed,
                ..FaultPlan::default()
            },
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.io.is_empty()
    }

    /// Generates a random plan of the given `intensity` over a platform of
    /// `hosts` nodes and an execution horizon of `horizon` seconds.
    ///
    /// `intensity` scales every hazard class at once: `0.0` yields an
    /// empty plan, `1.0` a harsh environment (several crashes and
    /// slowdowns, 5 % task-failure probability). Deterministic in
    /// `(seed, intensity, hosts, horizon)`.
    pub fn random(seed: u64, intensity: f64, hosts: usize, horizon: f64) -> Self {
        let intensity = intensity.clamp(0.0, 4.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_7001);
        let mut events = Vec::new();
        if intensity > 0.0 && hosts > 0 {
            let n_crashes = (intensity * 3.0).round() as usize;
            for _ in 0..n_crashes {
                events.push(FaultEvent::NodeCrash {
                    host: rng.gen_range(0..hosts),
                    from: rng.gen_range(0.0..horizon.max(1.0)),
                    duration: rng.gen_range(0.02..0.25) * horizon.max(1.0),
                });
            }
            let n_slow = (intensity * 2.0).round() as usize;
            for _ in 0..n_slow {
                events.push(FaultEvent::NodeSlowdown {
                    host: rng.gen_range(0..hosts),
                    from: rng.gen_range(0.0..horizon.max(1.0)),
                    factor: 1.0 + rng.gen_range(0.2..1.0) * intensity,
                });
            }
            let n_link = (intensity * 2.0).round() as usize;
            for _ in 0..n_link {
                events.push(FaultEvent::LinkDegrade {
                    host: rng.gen_range(0..hosts),
                    from: rng.gen_range(0.0..horizon.max(1.0)),
                    duration: rng.gen_range(0.05..0.4) * horizon.max(1.0),
                    factor: 1.0 + rng.gen_range(0.5..2.0) * intensity,
                });
            }
            events.push(FaultEvent::TaskFailure {
                prob: (0.05 * intensity).min(0.5),
            });
        }
        FaultPlan {
            seed,
            events,
            io: crate::io::IoFaultPlan::default(),
        }
    }

    /// Parses the compact CLI grammar used by `repro --faults`.
    ///
    /// Clauses are `;`-separated:
    ///
    /// * `seed=N` — per-decision seed (defaults to 0);
    /// * `crash@H:T+D` — host `H` down during `[T, T+D)`;
    /// * `slow@H:T*F` — host `H` runs `F`× slower from `T` on;
    /// * `link@H:T+D*F` — host `H`'s link carries `F`× bytes in `[T, T+D)`;
    /// * `straggle@T*F` — task `T` takes `F`× longer;
    /// * `fail=P` — every launch attempt fails with probability `P`;
    /// * `io:KNOB@V,…` — environment (filesystem) faults under the
    ///   durability paths: `enospc@P`, `eio@P`, `shortwrite@P`,
    ///   `fsync@P`, `rename@P`, `latency@MS`, or a preset
    ///   `light`/`moderate`/`heavy` (see
    ///   [`IoFaultPlan::parse`](crate::io::IoFaultPlan::parse));
    /// * `light` / `moderate` / `heavy` — a [`FaultPlan::random`] preset
    ///   (intensity 0.25 / 0.5 / 1.0) over `hosts` nodes and `horizon`
    ///   seconds.
    ///
    /// Example: `seed=7;crash@3:10+5;fail=0.05;io:enospc@0.01,shortwrite@0.05`.
    pub fn parse(input: &str, hosts: usize, horizon: f64) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::none();
        for clause in input.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            plan.parse_clause(clause, hosts, horizon)?;
        }
        Ok(plan)
    }

    fn parse_clause(
        &mut self,
        clause: &str,
        hosts: usize,
        horizon: f64,
    ) -> Result<(), PlanParseError> {
        let err = |what: &str| PlanParseError {
            clause: clause.to_string(),
            reason: what.to_string(),
        };
        let num = |s: &str, what: &str| -> Result<f64, PlanParseError> {
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| err(&format!("{what} `{s}` is not a non-negative number")))
        };
        let idx = |s: &str, what: &str| -> Result<usize, PlanParseError> {
            s.parse::<usize>()
                .map_err(|_| err(&format!("{what} `{s}` is not an index")))
        };

        if let Some(intensity) = match clause {
            "light" => Some(0.25),
            "moderate" => Some(0.5),
            "heavy" => Some(1.0),
            _ => None,
        } {
            let preset = FaultPlan::random(self.seed, intensity, hosts, horizon);
            self.events.extend(preset.events);
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("seed=") {
            self.seed = v.parse().map_err(|_| err("seed is not an integer"))?;
            return Ok(());
        }
        if let Some(v) = clause.strip_prefix("fail=") {
            let prob = num(v, "probability")?;
            if prob > 1.0 {
                return Err(err("probability exceeds 1"));
            }
            self.events.push(FaultEvent::TaskFailure { prob });
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("crash@") {
            let (h, times) = rest
                .split_once(':')
                .ok_or_else(|| err("expected `H:T+D`"))?;
            let (t, d) = times.split_once('+').ok_or_else(|| err("expected `T+D`"))?;
            self.events.push(FaultEvent::NodeCrash {
                host: idx(h, "host")?,
                from: num(t, "start")?,
                duration: num(d, "duration")?,
            });
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("slow@") {
            let (h, spec) = rest
                .split_once(':')
                .ok_or_else(|| err("expected `H:T*F`"))?;
            let (t, f) = spec.split_once('*').ok_or_else(|| err("expected `T*F`"))?;
            self.events.push(FaultEvent::NodeSlowdown {
                host: idx(h, "host")?,
                from: num(t, "start")?,
                factor: num(f, "factor")?,
            });
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("link@") {
            let (h, spec) = rest
                .split_once(':')
                .ok_or_else(|| err("expected `H:T+D*F`"))?;
            let (t, rest2) = spec
                .split_once('+')
                .ok_or_else(|| err("expected `T+D*F`"))?;
            let (d, f) = rest2.split_once('*').ok_or_else(|| err("expected `D*F`"))?;
            self.events.push(FaultEvent::LinkDegrade {
                host: idx(h, "host")?,
                from: num(t, "start")?,
                duration: num(d, "duration")?,
                factor: num(f, "factor")?,
            });
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("io:") {
            let parsed = crate::io::IoFaultPlan::parse(rest).map_err(|reason| PlanParseError {
                clause: clause.to_string(),
                reason,
            })?;
            self.io = parsed;
            return Ok(());
        }
        if let Some(rest) = clause.strip_prefix("straggle@") {
            let (t, f) = rest.split_once('*').ok_or_else(|| err("expected `T*F`"))?;
            self.events.push(FaultEvent::Straggler {
                task: idx(t, "task")?,
                factor: num(f, "factor")?,
            });
            return Ok(());
        }
        Err(err("unknown clause"))
    }
}

/// Builder for hand-written fault plans.
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Permanent `factor`× slowdown of `host` from `from` on.
    #[must_use]
    pub fn node_slowdown(mut self, host: HostId, from: f64, factor: f64) -> Self {
        self.plan.events.push(FaultEvent::NodeSlowdown {
            host: host.index(),
            from,
            factor,
        });
        self
    }

    /// `host` down during `[from, from + duration)`.
    #[must_use]
    pub fn node_crash(mut self, host: HostId, from: f64, duration: f64) -> Self {
        self.plan.events.push(FaultEvent::NodeCrash {
            host: host.index(),
            from,
            duration,
        });
        self
    }

    /// `host`'s link carries `factor`× bytes during `[from, from + duration)`.
    #[must_use]
    pub fn link_degrade(mut self, host: HostId, from: f64, duration: f64, factor: f64) -> Self {
        self.plan.events.push(FaultEvent::LinkDegrade {
            host: host.index(),
            from,
            duration,
            factor,
        });
        self
    }

    /// Task `task` takes `factor`× longer.
    #[must_use]
    pub fn straggler(mut self, task: TaskId, factor: f64) -> Self {
        self.plan.events.push(FaultEvent::Straggler {
            task: task.index(),
            factor,
        });
        self
    }

    /// Every launch attempt fails with probability `prob`.
    #[must_use]
    pub fn task_failure(mut self, prob: f64) -> Self {
        self.plan.events.push(FaultEvent::TaskFailure { prob });
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending clause.
    pub clause: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let plan = FaultPlan::builder(7)
            .node_crash(HostId(3), 10.0, 5.0)
            .node_slowdown(HostId(1), 0.0, 1.5)
            .straggler(TaskId(2), 3.0)
            .task_failure(0.1)
            .link_degrade(HostId(0), 2.0, 4.0, 2.0)
            .build();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 5);
        assert_eq!(
            plan.events[0],
            FaultEvent::NodeCrash {
                host: 3,
                from: 10.0,
                duration: 5.0
            }
        );
    }

    #[test]
    fn parse_roundtrips_the_readme_example() {
        let plan = FaultPlan::parse("seed=7;crash@3:10+5;fail=0.05", 32, 100.0).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.events,
            vec![
                FaultEvent::NodeCrash {
                    host: 3,
                    from: 10.0,
                    duration: 5.0
                },
                FaultEvent::TaskFailure { prob: 0.05 },
            ]
        );
    }

    #[test]
    fn parse_accepts_every_clause_kind() {
        let plan = FaultPlan::parse(
            "slow@1:0*1.5; link@2:3+4*2.5; straggle@6*3; moderate",
            16,
            50.0,
        )
        .unwrap();
        assert!(plan.events.len() > 3, "preset adds events");
        assert!(matches!(plan.events[0], FaultEvent::NodeSlowdown { .. }));
        assert!(matches!(plan.events[1], FaultEvent::LinkDegrade { .. }));
        assert!(matches!(plan.events[2], FaultEvent::Straggler { .. }));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "crash@3",
            "crash@x:1+2",
            "fail=1.5",
            "fail=-1",
            "slow@1:0",
            "wibble",
            "seed=abc",
            "straggle@1*NaN",
        ] {
            assert!(
                FaultPlan::parse(bad, 8, 10.0).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn random_plans_are_deterministic_and_scale_with_intensity() {
        let a = FaultPlan::random(5, 1.0, 32, 100.0);
        let b = FaultPlan::random(5, 1.0, 32, 100.0);
        assert_eq!(a, b);
        let light = FaultPlan::random(5, 0.25, 32, 100.0);
        assert!(light.events.len() < a.events.len());
        assert!(FaultPlan::random(5, 0.0, 32, 100.0).is_empty());
        for e in &a.events {
            match *e {
                FaultEvent::NodeCrash {
                    host,
                    from,
                    duration,
                } => {
                    assert!(host < 32 && from >= 0.0 && duration > 0.0);
                }
                FaultEvent::NodeSlowdown { factor, .. } => assert!(factor > 1.0),
                FaultEvent::LinkDegrade { factor, .. } => assert!(factor > 1.0),
                FaultEvent::TaskFailure { prob } => assert!((0.0..=0.5).contains(&prob)),
                FaultEvent::Straggler { .. } => {}
            }
        }
    }

    #[test]
    fn io_clause_parses_into_the_plan() {
        let plan =
            FaultPlan::parse("seed=3;io:enospc@0.01,shortwrite@0.05;fail=0.1", 8, 60.0).unwrap();
        assert_eq!(plan.io.enospc, 0.01);
        assert_eq!(plan.io.short_write, 0.05);
        assert!(!plan.is_empty());
        // An io-only plan is not empty even with no scripted events.
        let io_only = FaultPlan::parse("io:eio@0.02", 8, 60.0).unwrap();
        assert!(io_only.events.is_empty());
        assert!(!io_only.is_empty());
        assert!(FaultPlan::parse("io:wibble@0.1", 8, 60.0).is_err());
    }

    #[test]
    fn plans_serialize_to_json_and_back() {
        let plan = FaultPlan::builder(42)
            .node_crash(HostId(3), 10.0, 5.0)
            .task_failure(0.05)
            .build();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
