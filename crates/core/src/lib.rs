//! # mps-core — facade over the `mps` workspace
//!
//! One crate to depend on: re-exports every subsystem of the reproduction
//! of *"From Simulation to Experiment: A Case Study on Multiprocessor Task
//! Scheduling"* (Hunold, Casanova, Suter, APDCM 2011).
//!
//! | module | contents |
//! |---|---|
//! | [`des`] | discrete-event kernel + max-min fair-share solver |
//! | [`platform`] | cluster platform model (hosts, links, routes) |
//! | [`l07`] | SimGrid-like `Ptask_L07` parallel-task simulation |
//! | [`dag`] | mixed-parallel DAGs + the Table I random generator |
//! | [`kernels`] | 1-D matrix kernels, cost models, redistribution plans |
//! | [`sched`] | CPA / HCPA / MCPA two-phase schedulers |
//! | [`model`] | analytic / profile / empirical performance models |
//! | [`sim`] | the three simulator versions + schedule executor |
//! | [`testbed`] | the emulated execution environment (ground truth) |
//! | [`regress`] | least-squares fitting (Table II machinery) |
//! | [`stats`] | statistics, box plots, figure-data helpers |
//!
//! ## Quickstart
//!
//! ```
//! use mps_core::prelude::*;
//!
//! // A DAG from the paper's corpus, scheduled by HCPA under the analytic
//! // model, simulated, then "run" on the emulated testbed:
//! let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
//! let testbed = Testbed::bayreuth(42);
//! let sim = Simulator::new(testbed.nominal_cluster(), AnalyticModel::paper_jvm());
//! let out = sim.schedule_and_simulate(&g.dag, &Hcpa).unwrap();
//! let real = testbed.execute(&g.dag, &out.schedule, 0).unwrap();
//! // The analytic simulator underestimates reality:
//! assert!(real.makespan > out.result.makespan);
//! ```

#![warn(missing_docs)]

pub use mps_dag as dag;
pub use mps_des as des;
pub use mps_kernels as kernels;
pub use mps_l07 as l07;
pub use mps_model as model;
pub use mps_platform as platform;
pub use mps_regress as regress;
pub use mps_sched as sched;
pub use mps_sim as sim;
pub use mps_stats as stats;
pub use mps_testbed as testbed;

/// The most commonly used items, flattened.
pub mod prelude {
    pub use mps_dag::gen::{paper_corpus, DagGenParams, GeneratedDag, PAPER_CORPUS_SEED};
    pub use mps_dag::{Dag, TaskId};
    pub use mps_des::{ActivitySpec, Engine};
    pub use mps_kernels::{BlockDist1D, Kernel, RedistPlan};
    pub use mps_l07::{L07Sim, PTaskSpec};
    pub use mps_model::{AnalyticModel, EmpiricalModel, PerfModel, ProfileModel, ProfileTables};
    pub use mps_platform::{Cluster, ClusterSpec, HostId};
    pub use mps_regress::{fit_affine, AffineModel, Basis, PiecewiseModel};
    pub use mps_sched::{Cpa, Hcpa, Mcpa, Schedule, Scheduler};
    pub use mps_sim::{ExecutionResult, SimOutcome, Simulator};
    pub use mps_stats::{boxplot, count_agreement, relative_makespan, summary};
    pub use mps_testbed::{
        build_profile_model, fit_empirical_model, CrayPdgemmEnv, GroundTruth, ProfilingConfig,
        Testbed,
    };
}

#[cfg(test)]
mod facade_tests {
    use crate::prelude::*;

    #[test]
    fn prelude_exposes_the_full_pipeline() {
        // Compile-time + smoke check that the facade wires every layer.
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let testbed = Testbed::bayreuth(1);
        let sim = Simulator::new(testbed.nominal_cluster(), AnalyticModel::paper_jvm());
        let out = sim.schedule_and_simulate(&g.dag, &Mcpa).unwrap();
        let real = testbed.execute(&g.dag, &out.schedule, 0).unwrap();
        assert!(real.makespan > 0.0);
        // Stats layer.
        let rel = relative_makespan(out.result.makespan, real.makespan);
        assert!(rel.is_finite());
        // Regression layer.
        let m = fit_affine(Basis::Identity, &[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        assert!((m.a - 2.0).abs() < 1e-12);
        // Kernel layer.
        assert_eq!(Kernel::MatAdd { n: 2000 }.n(), 2000);
        // DES layer.
        let mut e = Engine::new();
        let r = e.add_resource(1.0);
        e.start(ActivitySpec::new(1.0).on(r, 1.0)).unwrap();
        assert!((e.run_to_idle().unwrap()[0].time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn module_paths_are_reachable() {
        // The per-subsystem module re-exports.
        let _ = crate::des::SharingProblem::new();
        let _ = crate::platform::ClusterSpec::bayreuth();
        let _ = crate::kernels::vanilla_plan(10, 2, 2);
        let _ = crate::stats::median(&[1.0, 2.0]);
        let _ = crate::model::EmpiricalModel::table_ii();
        let _ = crate::regress::Basis::Recip;
        let _ = crate::dag::shapes::chain(crate::kernels::Kernel::MatAdd { n: 100 }, 2);
        let _ = crate::testbed::GroundTruth::bayreuth();
    }
}
