//! # mps-core — facade over the `mps` workspace
//!
//! One crate to depend on: re-exports every subsystem of the reproduction
//! of *"From Simulation to Experiment: A Case Study on Multiprocessor Task
//! Scheduling"* (Hunold, Casanova, Suter, APDCM 2011).
//!
//! | module | contents |
//! |---|---|
//! | [`des`] | discrete-event kernel + max-min fair-share solver |
//! | [`platform`] | cluster platform model (hosts, links, routes) |
//! | [`l07`] | SimGrid-like `Ptask_L07` parallel-task simulation |
//! | [`dag`] | mixed-parallel DAGs + the Table I random generator |
//! | [`kernels`] | 1-D matrix kernels, cost models, redistribution plans |
//! | [`sched`] | CPA / HCPA / MCPA two-phase schedulers |
//! | [`model`] | analytic / profile / empirical performance models |
//! | [`sim`] | the three simulator versions + schedule executor |
//! | [`faults`] | seeded fault-injection plans and the fault model hook |
//! | [`journal`] | write-ahead result journal for crash-safe, resumable campaigns |
//! | [`supervise`] | worker supervision: process isolation, timeouts, quarantine |
//! | [`serve`] | scheduling-as-a-service daemon: wire protocol, admission control, drain |
//! | [`online`] | streaming arrival-process workloads: admission, moldable allocation, million-event horizons |
//! | [`testbed`] | the emulated execution environment (ground truth) |
//! | [`regress`] | least-squares fitting (Table II machinery) |
//! | [`stats`] | statistics, box plots, figure-data helpers |
//!
//! ## Quickstart
//!
//! ```
//! use mps_core::prelude::*;
//!
//! // A DAG from the paper's corpus, scheduled by HCPA under the analytic
//! // model, simulated, then "run" on the emulated testbed:
//! let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
//! let testbed = Testbed::bayreuth(42);
//! let sim = Simulator::new(testbed.nominal_cluster(), AnalyticModel::paper_jvm());
//! let out = sim.schedule_and_simulate(&g.dag, &Hcpa).unwrap();
//! let real = testbed.execute(&g.dag, &out.schedule, 0).unwrap();
//! // The analytic simulator underestimates reality:
//! assert!(real.makespan > out.result.makespan);
//! ```

#![warn(missing_docs)]

pub use mps_dag as dag;
pub use mps_des as des;
pub use mps_faults as faults;
pub use mps_journal as journal;
pub use mps_kernels as kernels;
pub use mps_l07 as l07;
pub use mps_model as model;
pub use mps_online as online;
pub use mps_platform as platform;
pub use mps_regress as regress;
pub use mps_sched as sched;
pub use mps_serve as serve;
pub use mps_sim as sim;
pub use mps_stats as stats;
pub use mps_supervise as supervise;
pub use mps_testbed as testbed;

/// One error type covering every layer of the stack, for applications
/// that drive the whole pipeline and want a single `?`-able error.
#[derive(Debug, Clone, PartialEq)]
pub enum MpsError {
    /// Discrete-event engine failure (including watchdog timeouts).
    Engine(mps_des::EngineError),
    /// Max-min fair solver failure.
    Solver(mps_des::SolverError),
    /// L07 parallel-task simulation failure.
    L07(mps_l07::L07Error),
    /// Schedule execution failure (stall, timeout, exhausted retries).
    Exec(mps_sim::ExecError),
    /// Malformed fault-plan description.
    FaultPlan(mps_faults::PlanParseError),
    /// Campaign journal failure (I/O, corruption, header mismatch).
    Journal(mps_journal::JournalError),
    /// Worker supervision failure (spawn, wire protocol, restart budget).
    Supervise(mps_supervise::SuperviseError),
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsError::Engine(e) => write!(f, "engine: {e}"),
            MpsError::Solver(e) => write!(f, "solver: {e}"),
            MpsError::L07(e) => write!(f, "l07: {e}"),
            MpsError::Exec(e) => write!(f, "exec: {e}"),
            MpsError::FaultPlan(e) => write!(f, "fault plan: {e}"),
            MpsError::Journal(e) => write!(f, "journal: {e}"),
            MpsError::Supervise(e) => write!(f, "supervise: {e}"),
        }
    }
}

impl std::error::Error for MpsError {}

impl From<mps_des::EngineError> for MpsError {
    fn from(e: mps_des::EngineError) -> Self {
        MpsError::Engine(e)
    }
}

impl From<mps_des::SolverError> for MpsError {
    fn from(e: mps_des::SolverError) -> Self {
        MpsError::Solver(e)
    }
}

impl From<mps_l07::L07Error> for MpsError {
    fn from(e: mps_l07::L07Error) -> Self {
        MpsError::L07(e)
    }
}

impl From<mps_sim::ExecError> for MpsError {
    fn from(e: mps_sim::ExecError) -> Self {
        MpsError::Exec(e)
    }
}

impl From<mps_faults::PlanParseError> for MpsError {
    fn from(e: mps_faults::PlanParseError) -> Self {
        MpsError::FaultPlan(e)
    }
}

impl From<mps_journal::JournalError> for MpsError {
    fn from(e: mps_journal::JournalError) -> Self {
        MpsError::Journal(e)
    }
}

impl From<mps_supervise::SuperviseError> for MpsError {
    fn from(e: mps_supervise::SuperviseError) -> Self {
        MpsError::Supervise(e)
    }
}

/// The most commonly used items, flattened.
pub mod prelude {
    pub use mps_dag::gen::{paper_corpus, DagGenParams, GeneratedDag, PAPER_CORPUS_SEED};
    pub use mps_dag::{Dag, TaskId};
    pub use mps_des::{ActivitySpec, Engine, Watchdog};
    pub use mps_faults::{FaultModel, FaultPlan, ScriptedFaults};
    pub use mps_journal::{
        CancelToken, JournalHeader, JournalWriter, Manifest, RunControl, StopReason,
    };
    pub use mps_kernels::{BlockDist1D, Kernel, RedistPlan};
    pub use mps_l07::{L07Sim, PTaskSpec};
    pub use mps_model::{AnalyticModel, EmpiricalModel, PerfModel, ProfileModel, ProfileTables};
    pub use mps_platform::{Cluster, ClusterSpec, HostId};
    pub use mps_regress::{fit_affine, AffineModel, Basis, PiecewiseModel};
    pub use mps_sched::{Cpa, Hcpa, Mcpa, Schedule, Scheduler};
    pub use mps_sim::{
        execute_with_policy, ExecError, ExecPolicy, ExecutionResult, FaultyExecution, SimOutcome,
        Simulator,
    };
    pub use mps_stats::{boxplot, count_agreement, relative_makespan, summary};
    pub use mps_supervise::{CrashReport, Supervisor, SupervisorConfig};
    pub use mps_testbed::{
        build_profile_model, fit_empirical_model, CrayPdgemmEnv, GroundTruth, ProfilingConfig,
        Testbed,
    };
}

#[cfg(test)]
mod facade_tests {
    use crate::prelude::*;

    #[test]
    fn prelude_exposes_the_full_pipeline() {
        // Compile-time + smoke check that the facade wires every layer.
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let testbed = Testbed::bayreuth(1);
        let sim = Simulator::new(testbed.nominal_cluster(), AnalyticModel::paper_jvm());
        let out = sim.schedule_and_simulate(&g.dag, &Mcpa).unwrap();
        let real = testbed.execute(&g.dag, &out.schedule, 0).unwrap();
        assert!(real.makespan > 0.0);
        // Stats layer.
        let rel = relative_makespan(out.result.makespan, real.makespan);
        assert!(rel.is_finite());
        // Regression layer.
        let m = fit_affine(Basis::Identity, &[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        assert!((m.a - 2.0).abs() < 1e-12);
        // Kernel layer.
        assert_eq!(Kernel::MatAdd { n: 2000 }.n(), 2000);
        // DES layer.
        let mut e = Engine::new();
        let r = e.add_resource(1.0);
        e.start(ActivitySpec::new(1.0).on(r, 1.0)).unwrap();
        assert!((e.run_to_idle().unwrap()[0].time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unified_error_wraps_every_layer() {
        let e: crate::MpsError = mps_sim::ExecError::Timeout { time: 3.0 }.into();
        assert!(e.to_string().contains("exec"));
        let e: crate::MpsError = mps_des::EngineError::Timeout {
            time: 1.0,
            steps: 2,
        }
        .into();
        assert!(matches!(e, crate::MpsError::Engine(_)));
        let parse_err = FaultPlan::parse("bogus-clause", 4, 100.0).unwrap_err();
        let e: crate::MpsError = parse_err.into();
        assert!(e.to_string().contains("fault plan"));
        let e: crate::MpsError = mps_supervise::SuperviseError::RestartBudgetExhausted {
            restarts: 4,
            unresolved: 2,
        }
        .into();
        assert!(e.to_string().contains("supervise"));
        // Round-trip through the std error trait.
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn prelude_exposes_fault_injection() {
        // A crash plan through the facade: wrap the testbed path via
        // Testbed::execute_with_faults and check determinism.
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let testbed = Testbed::bayreuth(1);
        let sim = Simulator::new(testbed.nominal_cluster(), AnalyticModel::paper_jvm());
        let out = sim.schedule_and_simulate(&g.dag, &Hcpa).unwrap();
        let plan = FaultPlan::builder(3)
            .node_crash(HostId(0), 0.0, 5.0)
            .build();
        let policy = ExecPolicy {
            max_retries: 6,
            ..ExecPolicy::default()
        };
        let a = testbed
            .execute_with_faults(&g.dag, &out.schedule, 0, &plan, &policy)
            .unwrap();
        let b = testbed
            .execute_with_faults(&g.dag, &out.schedule, 0, &plan, &policy)
            .unwrap();
        assert_eq!(a, b);
        assert!(a.total_retries() > 0);
    }

    #[test]
    fn module_paths_are_reachable() {
        // The per-subsystem module re-exports.
        let _ = crate::des::SharingProblem::new();
        let _ = crate::platform::ClusterSpec::bayreuth();
        let _ = crate::kernels::vanilla_plan(10, 2, 2);
        let _ = crate::stats::median(&[1.0, 2.0]);
        let _ = crate::model::EmpiricalModel::table_ii();
        let _ = crate::regress::Basis::Recip;
        let _ = crate::dag::shapes::chain(crate::kernels::Kernel::MatAdd { n: 100 }, 2);
        let _ = crate::testbed::GroundTruth::bayreuth();
        let _ = crate::faults::FaultPlan::none();
    }
}
