//! One bench per table/figure: measures the cost of regenerating each
//! artifact's *data* against the emulated testbed. The measurement-only
//! figures (2, 3, 4, 6, Tables I/II) run at full fidelity; the grid-backed
//! figures (1, 5, 7, 8) run over a corpus subset per iteration (the full
//! 54-DAG grid is exercised once in `grid_full` with a reduced sample
//! count).
//!
//! The printed values double as a regression guard: if a simulator or the
//! scheduler suddenly becomes 10× slower, these benches say so.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mps_exp::{figures, Harness, SimVariant};

fn harness() -> Harness {
    Harness::new(2011)
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_parameter_grid", |b| {
        b.iter(figures::table1);
    });
}

fn bench_fig1(c: &mut Criterion) {
    let h = harness();
    // Fig. 1 needs analytic cells only; regenerate a 6-DAG subset per
    // iteration.
    c.bench_function("fig1_analytic_comparison_subset", |b| {
        b.iter_batched(
            || (),
            |()| {
                let cells = h.run_subset(6, 1);
                figures::fig1(&cells)
            },
            BatchSize::PerIteration,
        );
    });
}

fn bench_fig2(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig2_analytic_model_error", |b| {
        b.iter(|| figures::fig2(&h.testbed));
    });
}

fn bench_fig3(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig3_startup_curve", |b| {
        b.iter(|| figures::fig3(&h.testbed));
    });
}

fn bench_fig4(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig4_redistribution_surface", |b| {
        b.iter(|| figures::fig4(&h.testbed));
    });
}

fn bench_fig5(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig5_profile_comparison_subset", |b| {
        b.iter_batched(
            || (),
            |()| {
                let cells = h.run_subset(6, 1);
                figures::fig5(&cells)
            },
            BatchSize::PerIteration,
        );
    });
}

fn bench_fig6(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig6_regression_fits", |b| {
        b.iter(|| figures::fig6(&h.testbed));
    });
}

fn bench_fig7(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig7_empirical_comparison_subset", |b| {
        b.iter_batched(
            || (),
            |()| {
                let cells = h.run_subset(6, 1);
                figures::fig7(&cells)
            },
            BatchSize::PerIteration,
        );
    });
}

fn bench_fig8(c: &mut Criterion) {
    let h = harness();
    let cells = h.run_subset(12, 1);
    c.bench_function("fig8_error_boxplots", |b| {
        b.iter(|| figures::fig8(&cells));
    });
}

fn bench_table2(c: &mut Criterion) {
    let h = harness();
    c.bench_function("table2_fit_vs_paper", |b| {
        b.iter(|| figures::table2(&h));
    });
}

fn bench_grid_full(c: &mut Criterion) {
    // The whole 54-DAG × 3-simulator × 2-algorithm grid, once per
    // iteration — the end-to-end cost of the paper's evaluation.
    let h = harness();
    let mut g = c.benchmark_group("grid");
    g.sample_size(10);
    g.bench_function("grid_full_54x3x2", |b| {
        b.iter(|| h.run_grid(1));
    });
    g.finish();
}

fn bench_harness_build(c: &mut Criterion) {
    // Harness construction = full §VI profiling + §VII fitting.
    let mut g = c.benchmark_group("calibration");
    g.sample_size(10);
    g.bench_function("harness_profile_and_fit", |b| {
        b.iter(|| Harness::new(2011));
    });
    g.finish();
}

fn bench_variants_single_dag(c: &mut Criterion) {
    // Per-simulator cost of one end-to-end cell (schedule + simulate +
    // testbed execution).
    let h = harness();
    let mut g = c.benchmark_group("cell");
    for variant in SimVariant::ALL {
        g.bench_function(format!("one_dag_{}", variant.name()), |b| {
            b.iter(|| {
                let cells = h.run_subset(1, 1);
                cells
                    .into_iter()
                    .filter(|c| c.variant == variant)
                    .map(|c| c.sim_makespan)
                    .sum::<f64>()
            });
        });
    }
    g.finish();
}

fn fast_criterion() -> Criterion {
    // Keep the full suite runnable in a couple of minutes: these benches
    // guard against order-of-magnitude regressions, not microsecond drift.
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = figures_benches;
    config = fast_criterion();
    targets =
        bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_table2,
    bench_grid_full,
    bench_harness_build,
    bench_variants_single_dag,
);
criterion_main!(figures_benches);
