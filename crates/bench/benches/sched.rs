//! Scheduling benchmark: allocation microbench over the full paper corpus
//! and end-to-end grid wall time. Emits `BENCH_SCHED.json` at the repo
//! root.
//!
//! One *pass* is the entire paper allocation workload: 54 corpus DAGs ×
//! 3 performance models (analytic, profile, empirical) × 3 algorithms
//! (CPA, HCPA, MCPA) = 486 allocations. The reference side runs the
//! frozen pre-rework `allocate_ref`; the engine side reuses a single
//! `AllocationEngine` (memoized τ-table, incremental bottom levels,
//! O(1) area accumulators) across every allocation, exactly as
//! `Scheduler::schedule` drives it. Before timing, every (DAG, model,
//! algorithm) combination is checked bit-identical between the two.
//!
//! Run with `cargo bench --bench sched` (full) or
//! `cargo bench --bench sched -- --quick` (smoke mode for CI: same
//! measurements, fewer passes and a subset grid). See BENCH.md for
//! methodology and the JSON schema.

use std::time::Instant;

use mps_core::dag::{Dag, TaskId};
use mps_core::model::{AnalyticModel, PerfModel};
use mps_core::sched::{
    allocate_ref, AllocationConfig, AllocationEngine, Cpa, Hcpa, Mcpa, Scheduler,
};
use mps_exp::Harness;

/// The corpus workload, fully materialized: every (DAG, model, algorithm)
/// cell as `(dag, config, model, kernel-agnostic τ inputs)`. τ closures are
/// rebuilt per call from `(dag, model)` so both sides pay the same closure
/// cost and only the allocation algorithm differs.
struct Workload {
    harness: Harness,
    cluster_size: usize,
    configs: [AllocationConfig; 3],
}

impl Workload {
    fn new() -> Self {
        let harness = Harness::new(2011);
        let cluster = harness.testbed.nominal_cluster();
        let algos: [&dyn Scheduler; 3] = [&Cpa, &Hcpa, &Mcpa];
        let configs = [
            algos[0].allocation_config(&cluster),
            algos[1].allocation_config(&cluster),
            algos[2].allocation_config(&cluster),
        ];
        Workload {
            harness,
            cluster_size: cluster.node_count(),
            configs,
        }
    }

    /// Run one full pass with `alloc`, returning the number of allocations
    /// performed and a checksum (sum of all allocated processor counts) so
    /// the optimizer cannot elide the work.
    fn pass<F>(&self, mut alloc: F) -> (usize, usize)
    where
        F: FnMut(&Dag, usize, &AllocationConfig, &dyn Fn(TaskId, usize) -> f64) -> Vec<usize>,
    {
        let analytic = AnalyticModel::paper_jvm();
        let models: [&dyn PerfModel; 3] = [
            &analytic,
            &self.harness.profile_model,
            &self.harness.empirical_model,
        ];
        let mut count = 0usize;
        let mut checksum = 0usize;
        for g in self.harness.corpus().iter() {
            for model in models {
                let tau = |t: TaskId, p: usize| {
                    let kernel = g.dag.task(t).kernel;
                    model.task_time(kernel, p) + model.startup_overhead(p)
                };
                for config in &self.configs {
                    let a = alloc(&g.dag, self.cluster_size, config, &tau);
                    checksum += a.iter().sum::<usize>();
                    count += 1;
                }
            }
        }
        (count, checksum)
    }

    /// Every corpus cell must be bit-identical between the reference and
    /// the engine before we bother timing either.
    fn verify_identical(&self) -> usize {
        let mut engine = AllocationEngine::new();
        let mut checked = 0usize;
        let analytic = AnalyticModel::paper_jvm();
        let models: [&dyn PerfModel; 3] = [
            &analytic,
            &self.harness.profile_model,
            &self.harness.empirical_model,
        ];
        for g in self.harness.corpus().iter() {
            for model in models {
                let tau = |t: TaskId, p: usize| {
                    let kernel = g.dag.task(t).kernel;
                    model.task_time(kernel, p) + model.startup_overhead(p)
                };
                for config in &self.configs {
                    let want = allocate_ref(&g.dag, self.cluster_size, config, tau);
                    let got = engine.allocate(&g.dag, self.cluster_size, config, tau);
                    assert_eq!(got, want, "allocation mismatch on {}", g.name());
                    checked += 1;
                }
            }
        }
        checked
    }
}

fn bench_ref(w: &Workload, passes: usize) -> (f64, usize) {
    let (count, c) = w.pass(|d, n, cfg, tau| allocate_ref(d, n, cfg, tau));
    std::hint::black_box(c);
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..passes {
        let (_, c) = w.pass(|d, n, cfg, tau| allocate_ref(d, n, cfg, tau));
        sink += c;
    }
    std::hint::black_box(sink);
    (t.elapsed().as_secs_f64() * 1e3 / passes as f64, count)
}

fn bench_engine(w: &Workload, passes: usize) -> (f64, usize) {
    let mut engine = AllocationEngine::new();
    let (count, c) = w.pass(|d, n, cfg, tau| engine.allocate(d, n, cfg, tau));
    std::hint::black_box(c);
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..passes {
        let (_, c) = w.pass(|d, n, cfg, tau| engine.allocate(d, n, cfg, tau));
        sink += c;
    }
    std::hint::black_box(sink);
    (t.elapsed().as_secs_f64() * 1e3 / passes as f64, count)
}

/// End-to-end: harness construction and the paper grid, same shape as the
/// DES bench's grid figure. `subset == 0` runs the full 54-DAG grid.
fn bench_grid(subset: usize, repeats: u64) -> (f64, f64) {
    let t = Instant::now();
    let h = Harness::new(2011);
    let build_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let cells = if subset == 0 {
        h.run_grid(repeats)
    } else {
        h.run_subset(subset, repeats)
    };
    assert!(!cells.is_empty());
    (build_s, t.elapsed().as_secs_f64())
}

struct Report {
    mode: &'static str,
    allocs_per_pass: usize,
    ref_ms: f64,
    eng_ms: f64,
    grid_subset: usize,
    grid_repeats: u64,
    grid_build_s: f64,
    grid_wall_s: f64,
}

/// Pre-rework numbers, captured on this container at the pre-rework
/// commit. The pre-rework `allocate` is frozen verbatim as `allocate_ref`,
/// so its timing at the current commit *is* the honest "before" for the
/// allocation microbench; the grid wall time was measured on the
/// pre-rework tree with `cargo bench --bench des` (full mode). They
/// anchor the before/after trajectory in `BENCH_SCHED.json`; see BENCH.md.
const BASELINE_JSON: &str = r#"{
    "commit": "1c93098",
    "alloc_corpus": {"allocs_per_pass": 486, "ref_ms_per_pass": 55.102, "engine_ms_per_pass": 55.102, "speedup": 1.00},
    "grid": {"dags": 54, "repeats": 3, "build_s": 0.000, "wall_s": 0.183}
  }"#;

fn emit_json(r: &Report) {
    let json = format!(
        r#"{{
  "schema": "mps-bench-sched/v1",
  "mode": "{mode}",
  "alloc_corpus": {{"allocs_per_pass": {apc}, "ref_ms_per_pass": {rms:.3}, "engine_ms_per_pass": {ems:.3}, "speedup": {spd:.2}}},
  "grid": {{"dags": {gsub}, "repeats": {grep}, "build_s": {gb:.3}, "wall_s": {gw:.3}}},
  "baseline": {base}
}}
"#,
        mode = r.mode,
        apc = r.allocs_per_pass,
        rms = r.ref_ms,
        ems = r.eng_ms,
        spd = r.ref_ms / r.eng_ms,
        gsub = if r.grid_subset == 0 {
            54
        } else {
            r.grid_subset
        },
        grep = r.grid_repeats,
        gb = r.grid_build_s,
        gw = r.grid_wall_s,
        base = BASELINE_JSON,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SCHED.json");
    std::fs::write(path, &json).expect("write BENCH_SCHED.json");
    println!("{json}");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `cargo test --benches` runs without `--bench`: smoke-run only.
    let smoke = !args.iter().any(|a| a == "--bench");
    let (passes, grid_subset) = if smoke {
        (1, 0)
    } else if quick {
        (3, 2)
    } else {
        (20, 0)
    };

    let w = Workload::new();
    let checked = w.verify_identical();
    println!("identity/corpus: {checked} allocations bit-identical (ref vs engine)");

    let (ref_ms, allocs_per_pass) = bench_ref(&w, passes);
    println!("alloc/ref/corpus: {ref_ms:.3} ms/pass ({allocs_per_pass} allocations)");
    let (eng_ms, _) = bench_engine(&w, passes);
    println!(
        "alloc/engine/corpus: {eng_ms:.3} ms/pass ({:.2}x)",
        ref_ms / eng_ms
    );

    if smoke {
        // Keep `cargo test --benches` fast: skip the grid and don't
        // overwrite the committed JSON with smoke numbers.
        println!("sched bench: ok (smoke test, pass --bench to measure)");
        return;
    }

    let grid_repeats = if quick { 1 } else { 3 };
    let (grid_build_s, grid_wall_s) = bench_grid(grid_subset, grid_repeats);
    let grid_label: String = if grid_subset == 0 {
        "full-grid".into()
    } else {
        format!("subset{grid_subset}")
    };
    println!("grid/{grid_label}x{grid_repeats}: build {grid_build_s:.3} s, run {grid_wall_s:.3} s");

    emit_json(&Report {
        mode: if quick { "quick" } else { "full" },
        allocs_per_pass,
        ref_ms,
        eng_ms,
        grid_subset,
        grid_repeats,
        grid_build_s,
        grid_wall_s,
    });
}
