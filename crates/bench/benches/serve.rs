//! Load-generation bench for the `mps-serve` daemon. Emits
//! `BENCH_SERVE.json` at the repo root.
//!
//! Everything runs through the real stack — `ServeBackend` over a real
//! `Harness`, the daemon on a real Unix socket, the typed client — so the
//! numbers include protocol framing, checksummed envelopes, and admission
//! control, not just backend compute:
//!
//! * **sustained** — one connection issuing `Schedule` requests
//!   back-to-back; reports throughput and p50/p99 round-trip latency.
//!   The warm per-thread allocation engine means steady-state latency is
//!   the amortized cost a long-lived daemon actually delivers.
//! * **grid** — one `SubsetGrid` request; reports streamed cells/s.
//! * **overload** — a pipelined burst at several times queue capacity
//!   against a deliberately tiny queue; reports the shed rate and checks
//!   every verdict is typed (`Accepted` | `Overloaded`), never a stall.
//!
//! Run with `cargo bench --bench serve` (full) or
//! `cargo bench --bench serve -- --quick` (CI smoke). See BENCH.md.

#[cfg(unix)]
mod unix_bench {
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use mps_core::journal::RunControl;
    use mps_core::serve::client::connect_unix;
    use mps_core::serve::{
        ClientFrame, RequestOutcome, Server, ServerConfig, ServerExit, ServerFrame, WorkRequest,
    };
    use mps_exp::{Harness, ServeBackend};

    fn socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mps-bench-serve-{}-{tag}.sock", std::process::id()))
    }

    fn start(
        backend: &Arc<ServeBackend>,
        cfg: ServerConfig,
        socket: PathBuf,
    ) -> std::thread::JoinHandle<ServerExit> {
        let backend: Arc<ServeBackend> = Arc::clone(backend);
        let server = Server::new(backend, cfg);
        std::thread::spawn(move || server.run_unix(&socket).expect("daemon run"))
    }

    fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
        if sorted_ms.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
        sorted_ms[idx]
    }

    pub struct Report {
        pub mode: &'static str,
        pub schedule_requests: usize,
        pub schedule_qps: f64,
        pub schedule_p50_ms: f64,
        pub schedule_p99_ms: f64,
        pub grid_take: usize,
        pub grid_cells: u64,
        pub grid_cells_per_s: f64,
        pub offered: usize,
        pub admitted: usize,
        pub shed: usize,
    }

    pub fn run(mode: &'static str, schedule_n: usize, grid_take: usize, burst: usize) -> Report {
        let backend = Arc::new(ServeBackend::new(Harness::new(2011)));

        // Sustained single-cell latency + one streamed grid request.
        let socket = socket_path("sustained");
        let handle = start(&backend, ServerConfig::default(), socket.clone());
        let (mut c, _) = connect_unix(&socket, "bench", Duration::from_secs(10)).expect("connect");
        let variants = ["analytic", "profile", "empirical"];
        let algos = ["HCPA", "MCPA"];
        let mut lat_ms = Vec::with_capacity(schedule_n);
        let t0 = Instant::now();
        for i in 0..schedule_n {
            let work = WorkRequest::Schedule {
                dag: i % 8,
                variant: variants[i % variants.len()].to_string(),
                algo: algos[i % algos.len()].to_string(),
            };
            let t = Instant::now();
            let outcome = c
                .request(i as u64, &work, None, &mut |_, _| {})
                .expect("schedule request");
            assert!(matches!(outcome, RequestOutcome::Done(_)), "{outcome:?}");
            lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let sustained_s = t0.elapsed().as_secs_f64();
        lat_ms.sort_by(|a, b| a.total_cmp(b));

        let mut grid_cells = 0u64;
        let t = Instant::now();
        let outcome = c
            .request(
                u64::MAX,
                &WorkRequest::SubsetGrid {
                    take: grid_take,
                    repeats: 1,
                    disturb: None,
                },
                None,
                &mut |_, _| grid_cells += 1,
            )
            .expect("grid request");
        let grid_s = t.elapsed().as_secs_f64();
        assert!(matches!(outcome, RequestOutcome::Done(_)), "{outcome:?}");
        c.drain(0).expect("drain");
        handle.join().expect("daemon thread");

        // Overload: a pipelined burst against a tiny queue must shed with
        // typed verdicts, and every admitted request must still finish.
        let socket = socket_path("overload");
        let cfg = ServerConfig {
            queue_capacity: 2,
            executors: 1,
            ctrl: RunControl::unlimited().with_throttle(Duration::from_millis(2)),
            ..ServerConfig::default()
        };
        let handle = start(&backend, cfg, socket.clone());
        let (mut c, _) = connect_unix(&socket, "burst", Duration::from_secs(10)).expect("connect");
        for id in 0..burst as u64 {
            c.send_raw(&ClientFrame::Submit {
                id,
                work: WorkRequest::SubsetGrid {
                    take: 1,
                    repeats: 1,
                    disturb: None,
                },
                deadline_ms: None,
            })
            .expect("pipelined submit");
        }
        let (mut admitted, mut shed, mut done) = (0usize, 0usize, 0usize);
        let mut verdicts = 0usize;
        while verdicts < burst || done < admitted {
            match c.recv_raw().expect("burst frame") {
                Some(ServerFrame::Accepted { .. }) => {
                    admitted += 1;
                    verdicts += 1;
                }
                Some(ServerFrame::Overloaded { retry_after_ms, .. }) => {
                    assert!(retry_after_ms >= 50, "hint below floor: {retry_after_ms}");
                    shed += 1;
                    verdicts += 1;
                }
                Some(ServerFrame::Done { .. }) | Some(ServerFrame::Failed { .. }) => done += 1,
                Some(ServerFrame::Cell { .. }) => {}
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        c.drain(0).expect("drain");
        handle.join().expect("daemon thread");

        Report {
            mode,
            schedule_requests: schedule_n,
            schedule_qps: schedule_n as f64 / sustained_s,
            schedule_p50_ms: percentile(&lat_ms, 0.50),
            schedule_p99_ms: percentile(&lat_ms, 0.99),
            grid_take,
            grid_cells,
            grid_cells_per_s: grid_cells as f64 / grid_s,
            offered: burst,
            admitted,
            shed,
        }
    }

    pub fn emit_json(r: &Report) {
        let json = format!(
            r#"{{
  "schema": "mps-bench-serve/v1",
  "mode": "{mode}",
  "sustained": {{"requests": {n}, "qps": {qps:.1}, "p50_ms": {p50:.3}, "p99_ms": {p99:.3}}},
  "grid": {{"take": {take}, "cells": {cells}, "cells_per_s": {cps:.1}}},
  "overload": {{"offered": {off}, "admitted": {adm}, "shed": {shd}, "shed_rate": {rate:.2}}}
}}
"#,
            mode = r.mode,
            n = r.schedule_requests,
            qps = r.schedule_qps,
            p50 = r.schedule_p50_ms,
            p99 = r.schedule_p99_ms,
            take = r.grid_take,
            cells = r.grid_cells,
            cps = r.grid_cells_per_s,
            off = r.offered,
            adm = r.admitted,
            shd = r.shed,
            rate = r.shed as f64 / r.offered as f64,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json");
        std::fs::write(path, &json).expect("write BENCH_SERVE.json");
        println!("{json}");
        println!("wrote {path}");
    }
}

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `cargo test --benches` runs without `--bench`: smoke-run only.
    let smoke = !args.iter().any(|a| a == "--bench");
    let (mode, schedule_n, grid_take, burst) = if smoke {
        ("smoke", 10, 1, 6)
    } else if quick {
        ("quick", 60, 2, 8)
    } else {
        ("full", 400, 4, 12)
    };
    let r = unix_bench::run(mode, schedule_n, grid_take, burst);
    println!(
        "serve/sustained: {:.1} req/s, p50 {:.3} ms, p99 {:.3} ms ({} requests)",
        r.schedule_qps, r.schedule_p50_ms, r.schedule_p99_ms, r.schedule_requests
    );
    println!(
        "serve/grid: {} cells in one request, {:.1} cells/s",
        r.grid_cells, r.grid_cells_per_s
    );
    println!(
        "serve/overload: {} offered, {} admitted, {} shed",
        r.offered, r.admitted, r.shed
    );
    if !smoke {
        unix_bench::emit_json(&r);
    }
}

#[cfg(not(unix))]
fn main() {
    println!("serve bench requires a Unix platform (Unix-domain sockets)");
}
