//! Grid throughput benchmark: end-to-end wall time of the batched
//! structure-of-arrays grid path. Emits `BENCH_GRID.json` at the repo
//! root.
//!
//! The measured unit is one *grid pass*: every (DAG, variant, algorithm)
//! cell of the paper evaluation through `Harness::run_grid` /
//! `Harness::run_subset` — allocation, simulation, and testbed execution
//! per cell, results in canonical order. Warm passes reuse the
//! per-worker slabs (memoized τ-tables, parked cross-cell caches, solver
//! arenas), which is exactly how campaign drivers hit the harness.
//!
//! Every pass is hashed (FNV-1a over the `Debug` rendering, which
//! round-trips f64 bits) and must match the cold pass — a perf number
//! from a nondeterministic grid would be meaningless, so divergence
//! aborts the bench.
//!
//! Run with `cargo bench --bench grid` (full: 54-DAG grid, 3 repeats) or
//! `cargo bench --bench grid -- --quick` (CI smoke: subset grid). In
//! quick mode, `--check-against <committed BENCH_GRID.json>` turns the
//! run into a regression guard: the job fails if the fresh quick wall
//! time exceeds 2x the committed `quick_ref` wall time. See BENCH.md.

use std::time::Instant;

use mps_exp::{CellResult, Harness};

/// Order-sensitive FNV-1a over the `Debug` rendering of the cell set.
/// f64 `Debug` output round-trips, so equal hashes mean bit-equal grids.
fn grid_hash(cells: &[CellResult]) -> u64 {
    let bytes = format!("{cells:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Clone)]
struct GridFigures {
    dags: usize,
    repeats: u64,
    cells: usize,
    workers: usize,
    passes: usize,
    cold_wall_s: f64,
    warm_wall_s: f64,
    cells_per_s: f64,
    hash: u64,
}

/// Cold pass plus `passes` warm passes over `subset` DAGs (`0` = the
/// full 54-DAG corpus); every pass must hash identically.
fn bench_grid(h: &Harness, subset: usize, repeats: u64, passes: usize) -> GridFigures {
    let workers = Harness::default_workers();
    let run = || {
        if subset == 0 {
            h.run_grid(repeats)
        } else {
            h.run_subset(subset, repeats)
        }
    };
    let t = Instant::now();
    let cold = run();
    let cold_wall_s = t.elapsed().as_secs_f64();
    let hash = grid_hash(&cold);
    let cells = cold.len();

    let t = Instant::now();
    for pass in 0..passes {
        let warm = run();
        assert_eq!(
            grid_hash(&warm),
            hash,
            "warm pass {pass} diverged from the cold grid"
        );
    }
    let warm_total = t.elapsed().as_secs_f64();
    let warm_wall_s = warm_total / passes as f64;
    GridFigures {
        dags: if subset == 0 { 54 } else { subset },
        repeats,
        cells,
        workers,
        passes,
        cold_wall_s,
        warm_wall_s,
        cells_per_s: cells as f64 / warm_wall_s,
        hash,
    }
}

/// Warm full-grid wall time at the pre-batch commit, measured on the dev
/// container (global `Mutex<Vec>` result collection, per-cell allocation
/// engines, per-cell cluster/corpus rebuilds). Anchors the before/after
/// trajectory; see BENCH.md for the machine caveats.
const BASELINE_JSON: &str = r#"{
    "commit": "b8e0131",
    "grid": {"dags": 54, "repeats": 3, "warm_wall_s": 0.181}
  }"#;

fn render_grid(f: &GridFigures) -> String {
    format!(
        r#"{{"dags": {}, "repeats": {}, "cells": {}, "workers": {}, "passes": {}, "cold_wall_s": {:.4}, "warm_wall_s": {:.4}, "cells_per_s": {:.0}, "hash": "{:016x}"}}"#,
        f.dags,
        f.repeats,
        f.cells,
        f.workers,
        f.passes,
        f.cold_wall_s,
        f.warm_wall_s,
        f.cells_per_s,
        f.hash,
    )
}

fn emit_json(mode: &str, grid: &GridFigures, quick_ref: &GridFigures) {
    let json = format!(
        r#"{{
  "schema": "mps-bench-grid/v1",
  "mode": "{mode}",
  "grid": {},
  "quick_ref": {},
  "baseline": {BASELINE_JSON}
}}
"#,
        render_grid(grid),
        render_grid(quick_ref),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_GRID.json");
    std::fs::write(path, &json).expect("write BENCH_GRID.json");
    println!("{json}");
    println!("wrote {path}");
}

/// Minimal field extraction for the regression guard: the first
/// `"warm_wall_s": <num>` after the `"quick_ref"` key of a committed
/// `BENCH_GRID.json`. Hand-rolled so the bench stays dependency-free.
fn committed_quick_wall(json: &str) -> Option<f64> {
    let tail = &json[json.find("\"quick_ref\"")?..];
    let tail = &tail[tail.find("\"warm_wall_s\":")? + "\"warm_wall_s\":".len()..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `cargo test --benches` runs without `--bench`: smoke-run only.
    let smoke = !args.iter().any(|a| a == "--bench");
    let check_against = args.iter().position(|a| a == "--check-against").map(|i| {
        args.get(i + 1)
            .expect("--check-against needs a path")
            .clone()
    });

    const QUICK: (usize, u64, usize) = (12, 2, 3); // subset, repeats, passes
    let (mode, subset, repeats, passes) = if smoke {
        ("smoke", 4, 1, 1)
    } else if quick {
        ("quick", QUICK.0, QUICK.1, QUICK.2)
    } else {
        ("full", 0, 3, 10)
    };

    let t = Instant::now();
    let h = Harness::new(2011);
    println!("harness build: {:.4} s", t.elapsed().as_secs_f64());

    let grid = bench_grid(&h, subset, repeats, passes);
    println!(
        "grid/{mode}: {} cells, cold {:.4} s, warm {:.4} s/pass ({} passes, {:.0} cells/s, hash {:016x})",
        grid.cells, grid.cold_wall_s, grid.warm_wall_s, grid.passes, grid.cells_per_s, grid.hash,
    );

    // Full mode also measures the quick configuration so the committed
    // JSON carries the reference number CI guards against; quick and
    // smoke runs *are* that configuration (close enough for an artifact).
    let quick_ref = if mode == "full" {
        let q = bench_grid(&h, QUICK.0, QUICK.1, QUICK.2);
        println!(
            "grid/quick_ref: {} cells, warm {:.4} s/pass",
            q.cells, q.warm_wall_s
        );
        q
    } else {
        grid.clone()
    };

    emit_json(mode, &grid, &quick_ref);

    if let Some(path) = check_against {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let reference = committed_quick_wall(&committed)
            .unwrap_or_else(|| panic!("no quick_ref.warm_wall_s in {path}"));
        let budget = reference * 2.0;
        println!(
            "regression guard: quick wall {:.4} s vs committed {reference:.4} s (budget {budget:.4} s)",
            grid.warm_wall_s
        );
        if grid.warm_wall_s > budget {
            eprintln!(
                "FAIL: quick grid wall {:.4} s exceeds 2x the committed reference {reference:.4} s",
                grid.warm_wall_s
            );
            std::process::exit(1);
        }
    }
}
