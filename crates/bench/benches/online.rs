//! Streaming-engine throughput benchmark: sustained DES events per
//! second of the online scheduling loop. Emits `BENCH_ONLINE.json` at
//! the repo root.
//!
//! The measured unit is one *streaming run*: a seeded Poisson arrival
//! process drawing paper-corpus DAGs, admission control, moldable
//! allocation, and per-task completion ticks, driven to a fixed event
//! horizon on a single core (`OnlineEngine::run`). Warm passes reuse the
//! engine's slabs, plan cache, and prebuilt sub-clusters — exactly how
//! the sweep driver and the daemon hit it.
//!
//! Every pass carries the engine's own FNV-1a trace digest and must
//! match the cold pass — a perf number from a nondeterministic run would
//! be meaningless, so divergence aborts the bench. Full mode also runs
//! half the horizon and asserts the DES high-water mark does not grow
//! with the horizon: memory must plateau, or "bounded memory" is a lie.
//!
//! Run with `cargo bench --bench online` (full: 1M-event horizon) or
//! `cargo bench --bench online -- --quick` (CI smoke). In quick mode,
//! `--check-against <committed BENCH_ONLINE.json>` turns the run into a
//! regression guard: the job fails if the fresh quick wall time exceeds
//! 2x the committed `quick_ref` wall time. See BENCH.md.

use std::time::Instant;

use mps_core::dag::Dag;
use mps_core::online::{ArrivalSpec, OnlineAlgo, OnlineConfig, OnlineEngine, OnlineOutcome};
use mps_core::prelude::{paper_corpus, PAPER_CORPUS_SEED};

#[derive(Clone)]
struct OnlineFigures {
    arrival: String,
    horizon_events: u64,
    events: u64,
    completed: u64,
    passes: usize,
    cold_wall_s: f64,
    warm_wall_s: f64,
    events_per_s: f64,
    jobs_per_s: f64,
    p99_ms: f64,
    des_high_water: usize,
    job_slots: usize,
    digest: u64,
}

/// Cold pass plus `passes` warm passes at the same config; every pass
/// must produce the identical trace digest.
fn bench_online(engine: &mut OnlineEngine<'_>, cfg: &OnlineConfig, passes: usize) -> OnlineFigures {
    let t = Instant::now();
    let cold = engine.run(cfg).expect("cold streaming run");
    let cold_wall_s = t.elapsed().as_secs_f64();

    let mut warm_total = 0.0;
    let mut last: OnlineOutcome = cold.clone();
    for pass in 0..passes {
        let t = Instant::now();
        let warm = engine.run(cfg).expect("warm streaming run");
        warm_total += t.elapsed().as_secs_f64();
        assert_eq!(
            warm.run.trace_digest, cold.run.trace_digest,
            "warm pass {pass} diverged from the cold run"
        );
        last = warm;
    }
    let warm_wall_s = warm_total / passes as f64;
    OnlineFigures {
        arrival: cold.run.arrival.clone(),
        horizon_events: cfg.horizon_events,
        events: cold.run.events,
        completed: cold.run.completed,
        passes,
        cold_wall_s,
        warm_wall_s,
        events_per_s: cold.run.events as f64 / warm_wall_s,
        jobs_per_s: cold.run.completed as f64 / warm_wall_s,
        p99_ms: cold.run.latency_p99_ms,
        des_high_water: last.high_water.des_high_water,
        job_slots: last.high_water.job_slots,
        digest: cold.run.trace_digest,
    }
}

fn config(horizon: u64) -> OnlineConfig {
    // The "busy" load level of the repro sweep: ~60% cluster utilization,
    // no steady-state shedding, so the loop exercises claim/release and
    // completion ticks rather than the admission fast-reject path.
    let mut cfg = OnlineConfig::new(ArrivalSpec::Poisson { rate: 0.04 }, OnlineAlgo::Hcpa);
    cfg.seed = 2011;
    cfg.horizon_events = horizon;
    cfg.max_width = 8;
    cfg
}

fn render_online(f: &OnlineFigures) -> String {
    format!(
        r#"{{"arrival": "{}", "horizon_events": {}, "events": {}, "completed": {}, "passes": {}, "cold_wall_s": {:.4}, "warm_wall_s": {:.4}, "events_per_s": {:.0}, "jobs_per_s": {:.0}, "p99_ms": {:.3}, "des_high_water": {}, "job_slots": {}, "digest": "{:016x}"}}"#,
        f.arrival,
        f.horizon_events,
        f.events,
        f.completed,
        f.passes,
        f.cold_wall_s,
        f.warm_wall_s,
        f.events_per_s,
        f.jobs_per_s,
        f.p99_ms,
        f.des_high_water,
        f.job_slots,
        f.digest,
    )
}

fn emit_json(mode: &str, online: &OnlineFigures, quick_ref: &OnlineFigures, plateau: &str) {
    let json = format!(
        r#"{{
  "schema": "mps-bench-online/v1",
  "mode": "{mode}",
  "online": {},
  "plateau": {plateau},
  "quick_ref": {}
}}
"#,
        render_online(online),
        render_online(quick_ref),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ONLINE.json");
    std::fs::write(path, &json).expect("write BENCH_ONLINE.json");
    println!("{json}");
    println!("wrote {path}");
}

/// Minimal field extraction for the regression guard: the first
/// `"warm_wall_s": <num>` after the `"quick_ref"` key of a committed
/// `BENCH_ONLINE.json`. Hand-rolled so the bench stays dependency-free.
fn committed_quick_wall(json: &str) -> Option<f64> {
    let tail = &json[json.find("\"quick_ref\"")?..];
    let tail = &tail[tail.find("\"warm_wall_s\":")? + "\"warm_wall_s\":".len()..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `cargo test --benches` runs without `--bench`: smoke-run only.
    let smoke = !args.iter().any(|a| a == "--bench");
    let check_against = args.iter().position(|a| a == "--check-against").map(|i| {
        args.get(i + 1)
            .expect("--check-against needs a path")
            .clone()
    });

    const QUICK: (u64, usize) = (150_000, 2); // horizon, passes
    let (mode, horizon, passes) = if smoke {
        ("smoke", 30_000, 1)
    } else if quick {
        ("quick", QUICK.0, QUICK.1)
    } else {
        ("full", 1_000_000, 3)
    };

    let t = Instant::now();
    let corpus: Vec<Dag> = paper_corpus(PAPER_CORPUS_SEED)
        .into_iter()
        .map(|g| g.dag)
        .collect();
    let mut engine = OnlineEngine::new(&corpus).expect("streaming engine");
    println!("corpus + engine build: {:.4} s", t.elapsed().as_secs_f64());

    let online = bench_online(&mut engine, &config(horizon), passes);
    println!(
        "online/{mode}: {} events, cold {:.4} s, warm {:.4} s/pass ({} passes, {:.0} events/s, {:.0} jobs/s, digest {:016x})",
        online.events,
        online.cold_wall_s,
        online.warm_wall_s,
        online.passes,
        online.events_per_s,
        online.jobs_per_s,
        online.digest,
    );

    // Memory plateau: the DES high-water mark at half the horizon must
    // already be the steady-state mark — growth with the horizon would
    // mean per-event leakage, and the bounded-memory claim dies here.
    let plateau = if mode == "full" {
        let half = bench_online(&mut engine, &config(horizon / 2), 1);
        println!(
            "plateau: des high water {} @ {}ev vs {} @ {}ev, job slots {} vs {}",
            half.des_high_water,
            half.events,
            online.des_high_water,
            online.events,
            half.job_slots,
            online.job_slots,
        );
        assert!(
            online.des_high_water <= half.des_high_water.max(64),
            "DES high water grew with the horizon: {} @ half vs {} @ full",
            half.des_high_water,
            online.des_high_water,
        );
        format!(
            r#"{{"half_horizon_high_water": {}, "full_horizon_high_water": {}, "plateaued": true}}"#,
            half.des_high_water, online.des_high_water
        )
    } else {
        "null".to_string()
    };

    // Full mode also measures the quick configuration so the committed
    // JSON carries the reference number CI guards against; quick and
    // smoke runs *are* that configuration (close enough for an artifact).
    let quick_ref = if mode == "full" {
        let q = bench_online(&mut engine, &config(QUICK.0), QUICK.1);
        println!(
            "online/quick_ref: {} events, warm {:.4} s/pass",
            q.events, q.warm_wall_s
        );
        q
    } else {
        online.clone()
    };

    emit_json(mode, &online, &quick_ref, &plateau);

    if let Some(path) = check_against {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let reference = committed_quick_wall(&committed)
            .unwrap_or_else(|| panic!("no quick_ref.warm_wall_s in {path}"));
        let budget = reference * 2.0;
        println!(
            "regression guard: quick wall {:.4} s vs committed {reference:.4} s (budget {budget:.4} s)",
            online.warm_wall_s
        );
        if online.warm_wall_s > budget {
            eprintln!(
                "FAIL: quick online wall {:.4} s exceeds 2x the committed reference {reference:.4} s",
                online.warm_wall_s
            );
            std::process::exit(1);
        }
    }
}
