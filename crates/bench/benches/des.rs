//! DES-core benchmark: solver microbench, engine event throughput, and
//! end-to-end grid wall time. Emits `BENCH_DES.json` at the repo root.
//!
//! Run with `cargo bench --bench des` (full) or
//! `cargo bench --bench des -- --quick` (smoke mode for CI: same
//! measurements, much smaller workloads). See BENCH.md for methodology and
//! the JSON schema.

use std::time::Instant;

use mps_core::des::{
    max_min_fair_rates_ref, ActivitySpec, Completion, Demand, Engine, SolverWorkspace,
};
use mps_exp::Harness;

/// 32-resource / 64-activity sharing problem: every activity touches three
/// resources (same shape as the `components` solver bench), which makes the
/// bottleneck iteration traverse realistic cross-resource coupling.
const SOLVER_RESOURCES: usize = 32;
const SOLVER_ACTIVITIES: usize = 64;

fn solver_problem() -> (Vec<f64>, Vec<Demand>) {
    let caps = vec![125.0e6; SOLVER_RESOURCES];
    let demands: Vec<Demand> = (0..SOLVER_ACTIVITIES)
        .map(|i| Demand {
            weights: vec![
                (i % SOLVER_RESOURCES, 1.0e6),
                ((i * 7 + 3) % SOLVER_RESOURCES, 2.0e6),
                ((i * 13 + 1) % SOLVER_RESOURCES, 0.5e6),
            ],
            bound: if i % 5 == 0 { 40.0 } else { f64::INFINITY },
        })
        .collect();
    (caps, demands)
}

fn bench_solver_ref(iters: usize) -> f64 {
    let (caps, demands) = solver_problem();
    // Warm-up.
    let r = reference_solve(&caps, &demands);
    std::hint::black_box(r);
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(reference_solve(&caps, &demands));
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_solver_incremental(iters: usize) -> f64 {
    let (caps, demands) = solver_problem();
    let mut solve = incremental_solver();
    std::hint::black_box(solve(&caps, &demands));
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(solve(&caps, &demands));
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// The reference (from-scratch) solver.
fn reference_solve(caps: &[f64], demands: &[Demand]) -> f64 {
    let rates = solver_ref_entry(caps, demands);
    rates.iter().sum()
}

/// `max_min_fair_rates_ref` is the frozen copy of the pre-rework algorithm
/// (HashMaps of remaining capacities, per-iteration demand rebuilds); the
/// closure below reuses one `SolverWorkspace` across calls, which is
/// exactly how the engine drives it.
fn solver_ref_entry(caps: &[f64], demands: &[Demand]) -> Vec<f64> {
    max_min_fair_rates_ref(caps, demands).expect("solver failed")
}

fn incremental_solver() -> impl FnMut(&[f64], &[Demand]) -> f64 {
    let mut ws = SolverWorkspace::new();
    move |caps: &[f64], demands: &[Demand]| {
        let rates = ws.solve(caps, demands).expect("solver failed");
        rates.iter().sum::<f64>()
    }
}

/// Engine churn: 32 resources, 64 live activities; every completion is
/// immediately replaced, so the engine stays at a steady 64-activity load
/// while `target_events` completions stream through.
fn bench_engine_churn(target_events: usize) -> f64 {
    let mut e = Engine::new();
    let res: Vec<_> = (0..SOLVER_RESOURCES)
        .map(|_| e.add_resource(125.0e6))
        .collect();
    let start_one = |e: &mut Engine, i: usize| {
        let amount = 1.0e6 * (1.0 + (i % 17) as f64);
        e.start(
            ActivitySpec::new(amount)
                .on(res[i % SOLVER_RESOURCES], 1.0e4)
                .on(res[(i * 7 + 3) % SOLVER_RESOURCES], 2.0e4)
                .on(res[(i * 13 + 1) % SOLVER_RESOURCES], 0.5e4),
        )
        .expect("start");
    };
    for i in 0..SOLVER_ACTIVITIES {
        start_one(&mut e, i);
    }
    let mut next = SOLVER_ACTIVITIES;
    let mut events = 0usize;
    let t = Instant::now();
    while events < target_events {
        let step = e.step().expect("step").expect("not idle");
        for c in &step.completed {
            if matches!(c, Completion::Activity(_)) {
                events += 1;
                start_one(&mut e, next);
                next += 1;
            }
        }
    }
    events as f64 / t.elapsed().as_secs_f64()
}

/// Timer fast path: a storm of timers fires while 64 long-running
/// activities sit at unchanged rates — no start/finish perturbs the
/// sharing problem, so an incremental engine can skip the solve entirely.
fn bench_timer_path(timers: usize) -> f64 {
    let mut e = Engine::new();
    let res: Vec<_> = (0..SOLVER_RESOURCES)
        .map(|_| e.add_resource(125.0e6))
        .collect();
    for i in 0..SOLVER_ACTIVITIES {
        e.start(
            ActivitySpec::new(1.0e18)
                .on(res[i % SOLVER_RESOURCES], 1.0e4)
                .on(res[(i * 7 + 3) % SOLVER_RESOURCES], 2.0e4),
        )
        .expect("start");
    }
    for i in 0..timers {
        e.schedule_timer(1.0e-6 * (i + 1) as f64).expect("timer");
    }
    let mut fired = 0usize;
    let t = Instant::now();
    while fired < timers {
        let step = e.step().expect("step").expect("not idle");
        fired += step
            .completed
            .iter()
            .filter(|c| matches!(c, Completion::Timer(_)))
            .count();
    }
    fired as f64 / t.elapsed().as_secs_f64()
}

/// End-to-end: harness construction (testbed profiling + model fitting,
/// all simulator-driven) and the paper grid. `subset == 0` runs the full
/// 54-DAG `run_grid`; otherwise a corpus slice via `run_subset`.
fn bench_grid(subset: usize, repeats: u64) -> (f64, f64) {
    let t = Instant::now();
    let h = Harness::new(2011);
    let build_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let cells = if subset == 0 {
        h.run_grid(repeats)
    } else {
        h.run_subset(subset, repeats)
    };
    assert!(!cells.is_empty());
    (build_s, t.elapsed().as_secs_f64())
}

struct Report {
    mode: &'static str,
    solver_ref_ns: f64,
    solver_inc_ns: f64,
    churn_events: usize,
    churn_eps: f64,
    timer_events: usize,
    timer_eps: f64,
    grid_subset: usize,
    grid_repeats: u64,
    grid_build_s: f64,
    grid_wall_s: f64,
}

/// Pre-refactor numbers, captured on this container at the seed commit
/// with `cargo bench --bench des` (full mode, HashMap-keyed engine and
/// from-scratch solver). They anchor the before/after trajectory in
/// `BENCH_DES.json`; see BENCH.md.
const BASELINE_JSON: &str = r#"{
    "commit": "294e5cb",
    "solver_32r_64a": {"ref_ns_per_solve": 13905.5, "incremental_ns_per_solve": 13603.4, "speedup": 1.02},
    "engine_churn_32r_64a": {"events_per_sec": 38105},
    "timer_path_32r_64a": {"events_per_sec": 3703},
    "grid": {"dags": 54, "repeats": 3, "build_s": 0.000, "wall_s": 0.166}
  }"#;

fn emit_json(r: &Report) {
    let speedup = r.solver_ref_ns / r.solver_inc_ns;
    let json = format!(
        r#"{{
  "schema": "mps-bench-des/v1",
  "mode": "{mode}",
  "solver_32r_64a": {{"ref_ns_per_solve": {sref:.1}, "incremental_ns_per_solve": {sinc:.1}, "speedup": {spd:.2}}},
  "engine_churn_32r_64a": {{"events": {cev}, "events_per_sec": {ceps:.0}}},
  "timer_path_32r_64a": {{"events": {tev}, "events_per_sec": {teps:.0}}},
  "grid": {{"dags": {gsub}, "repeats": {grep}, "build_s": {gb:.3}, "wall_s": {gw:.3}}},
  "baseline": {base}
}}
"#,
        mode = r.mode,
        sref = r.solver_ref_ns,
        sinc = r.solver_inc_ns,
        spd = speedup,
        cev = r.churn_events,
        ceps = r.churn_eps,
        tev = r.timer_events,
        teps = r.timer_eps,
        gsub = if r.grid_subset == 0 {
            54
        } else {
            r.grid_subset
        },
        grep = r.grid_repeats,
        gb = r.grid_build_s,
        gw = r.grid_wall_s,
        base = BASELINE_JSON,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_DES.json");
    std::fs::write(path, &json).expect("write BENCH_DES.json");
    println!("{json}");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `cargo test --benches` runs without `--bench`: smoke-run only.
    let smoke = !args.iter().any(|a| a == "--bench");
    let (solver_iters, churn_events, timer_events, grid_subset) = if smoke {
        (10, 200, 200, 0)
    } else if quick {
        (2_000, 5_000, 5_000, 2)
    } else {
        (20_000, 60_000, 60_000, 0)
    };

    let solver_ref_ns = bench_solver_ref(solver_iters);
    println!("solver/ref/32r_64a: {solver_ref_ns:.1} ns/solve");
    let solver_inc_ns = bench_solver_incremental(solver_iters);
    println!(
        "solver/incremental/32r_64a: {solver_inc_ns:.1} ns/solve ({:.2}x)",
        solver_ref_ns / solver_inc_ns
    );

    let churn_eps = bench_engine_churn(churn_events);
    println!("engine/churn/32r_64a: {churn_eps:.0} events/s ({churn_events} events)");
    let timer_eps = bench_timer_path(timer_events);
    println!("engine/timers/32r_64a: {timer_eps:.0} events/s ({timer_events} timers)");

    if smoke {
        // Keep `cargo test --benches` fast: skip the harness build and
        // don't overwrite the committed JSON with smoke numbers.
        println!("des bench: ok (smoke test, pass --bench to measure)");
        return;
    }

    let grid_repeats = if quick { 1 } else { 3 };
    let (grid_build_s, grid_wall_s) = bench_grid(grid_subset, grid_repeats);
    let grid_label: String = if grid_subset == 0 {
        "full-grid".into()
    } else {
        format!("subset{grid_subset}")
    };
    println!("grid/{grid_label}x{grid_repeats}: build {grid_build_s:.3} s, run {grid_wall_s:.3} s");

    emit_json(&Report {
        mode: if quick { "quick" } else { "full" },
        solver_ref_ns,
        solver_inc_ns,
        churn_events,
        churn_eps,
        timer_events,
        timer_eps,
        grid_subset,
        grid_repeats,
        grid_build_s,
        grid_wall_s,
    });
}
