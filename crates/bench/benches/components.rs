//! Component microbenchmarks: the building blocks every experiment run
//! exercises thousands of times — the fair-share solver, the L07 engine,
//! the DAG generator, the schedulers, the redistribution planner and the
//! regression fitter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mps_core::dag::gen::{generate, paper_corpus, DagGenParams, PAPER_CORPUS_SEED};
use mps_core::des::{max_min_fair_rates, Demand};
use mps_core::kernels::vanilla_plan;
use mps_core::l07::{L07Sim, PTaskSpec};
use mps_core::model::AnalyticModel;
use mps_core::platform::{Cluster, HostId};
use mps_core::regress::{fit_affine, Basis};
use mps_core::sched::{Cpa, Hcpa, Mcpa, Scheduler};

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    for &(activities, resources) in &[(10usize, 8usize), (100, 65), (1000, 65)] {
        let caps = vec![125.0e6; resources];
        let demands: Vec<Demand> = (0..activities)
            .map(|i| Demand {
                weights: vec![
                    (i % resources, 1.0e6),
                    ((i * 7 + 3) % resources, 2.0e6),
                    ((i * 13 + 1) % resources, 0.5e6),
                ],
                bound: f64::INFINITY,
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("max_min_fair", format!("{activities}a_{resources}r")),
            &(caps, demands),
            |b, (caps, demands)| {
                b.iter(|| max_min_fair_rates(caps, demands).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_l07_transfers(c: &mut Criterion) {
    let mut g = c.benchmark_group("l07");
    for &flows in &[4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("concurrent_transfers", flows),
            &flows,
            |b, &flows| {
                b.iter(|| {
                    let mut sim = L07Sim::new(Cluster::bayreuth());
                    for i in 0..flows {
                        sim.submit(PTaskSpec::p2p(HostId(i % 32), HostId((i + 7) % 32), 32.0e6))
                            .unwrap();
                    }
                    sim.run_to_idle().unwrap()
                });
            },
        );
    }
    g.finish();
}

fn bench_dag_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag");
    g.bench_function("generate_one", |b| {
        let params = DagGenParams {
            tasks: 10,
            input_matrices: 8,
            add_ratio: 0.5,
            matrix_size: 2000,
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            generate(&params, seed)
        });
    });
    g.bench_function("generate_corpus_54", |b| {
        b.iter(|| paper_corpus(PAPER_CORPUS_SEED));
    });
    g.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let corpus = paper_corpus(PAPER_CORPUS_SEED);
    let dag = &corpus[0].dag;
    let cluster = Cluster::bayreuth();
    let model = AnalyticModel::paper_jvm();
    let mut g = c.benchmark_group("sched");
    for algo in [&Cpa as &dyn Scheduler, &Hcpa, &Mcpa] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| algo.schedule(dag, &cluster, &model));
        });
    }
    g.finish();
}

fn bench_redist_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist");
    for &(ps, pd) in &[(4usize, 8usize), (16, 32), (32, 32)] {
        g.bench_with_input(
            BenchmarkId::new("plan", format!("{ps}to{pd}")),
            &(ps, pd),
            |b, &(ps, pd)| {
                b.iter(|| vanilla_plan(3000, ps, pd));
            },
        );
    }
    g.finish();
}

fn bench_regression(c: &mut Criterion) {
    let ps: Vec<f64> = (1..=32).map(|p| p as f64).collect();
    let ys: Vec<f64> = ps.iter().map(|&p| 500.0 / p + 3.0).collect();
    c.bench_function("regress/fit_affine_32pts", |b| {
        b.iter(|| fit_affine(Basis::Recip, &ps, &ys).unwrap());
    });
}

fn fast_criterion() -> Criterion {
    // Keep the full suite runnable in a couple of minutes: these benches
    // guard against order-of-magnitude regressions, not microsecond drift.
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = component_benches;
    config = fast_criterion();
    targets =
        bench_solver,
    bench_l07_transfers,
    bench_dag_generation,
    bench_schedulers,
    bench_redist_planning,
    bench_regression,
);
criterion_main!(component_benches);
