//! Ablation/scaling benches for the design choices DESIGN.md calls out:
//! how the end-to-end pipeline scales with DAG size, cluster size and
//! profiling effort, and what each scheduler stop-rule costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mps_core::dag::gen::{generate, DagGenParams};
use mps_core::model::AnalyticModel;
use mps_core::platform::ClusterSpec;
use mps_core::sched::{Hcpa, Mcpa, Scheduler};
use mps_core::sim::Simulator;
use mps_core::testbed::{
    build_profile_model, fit_empirical_model, paper_kernels, ProfilingConfig, Testbed,
};

/// DAG-size scaling: the pipeline on 10/20/40-task applications.
fn bench_dag_size_scaling(c: &mut Criterion) {
    let cluster = ClusterSpec::bayreuth().build().unwrap();
    let model = AnalyticModel::paper_jvm();
    let mut g = c.benchmark_group("ablation_dag_size");
    for &tasks in &[10usize, 20, 40, 80] {
        let params = DagGenParams {
            tasks,
            input_matrices: 8,
            add_ratio: 0.5,
            matrix_size: 2000,
        };
        let dag = generate(&params, 1);
        g.bench_with_input(
            BenchmarkId::new("schedule_and_simulate", tasks),
            &dag,
            |b, dag| {
                let sim = Simulator::new(cluster.clone(), model);
                b.iter(|| {
                    sim.schedule_and_simulate(dag, &Hcpa)
                        .unwrap()
                        .result
                        .makespan
                });
            },
        );
    }
    g.finish();
}

/// Cluster-size scaling: allocation loops and the L07 resource count grow
/// with N.
fn bench_cluster_size_scaling(c: &mut Criterion) {
    let params = DagGenParams {
        tasks: 10,
        input_matrices: 8,
        add_ratio: 0.5,
        matrix_size: 2000,
    };
    let dag = generate(&params, 1);
    let model = AnalyticModel::paper_jvm();
    let mut g = c.benchmark_group("ablation_cluster_size");
    for &nodes in &[8usize, 32, 128, 512] {
        let mut spec = ClusterSpec::bayreuth();
        spec.nodes = nodes;
        let cluster = spec.build().unwrap();
        g.bench_with_input(
            BenchmarkId::new("schedule_and_simulate", nodes),
            &cluster,
            |b, cluster| {
                let sim = Simulator::new(cluster.clone(), model);
                b.iter(|| {
                    sim.schedule_and_simulate(&dag, &Hcpa)
                        .unwrap()
                        .result
                        .makespan
                });
            },
        );
    }
    g.finish();
}

/// Profiling-effort ablation: brute-force profiles (§VI) vs sparse
/// regression fits (§VII) — the cost side of the paper's accuracy/effort
/// trade-off.
fn bench_profiling_effort(c: &mut Criterion) {
    let tb = Testbed::bayreuth(2011);
    let kernels = paper_kernels();
    let mut g = c.benchmark_group("ablation_calibration_effort");
    g.sample_size(20);
    for &trials in &[1u64, 3, 10] {
        let cfg = ProfilingConfig {
            task_trials: trials,
            startup_trials: trials * 5,
            redist_trials: trials,
            max_p: 32,
        };
        g.bench_with_input(
            BenchmarkId::new("brute_force_profiles", trials),
            &cfg,
            |b, cfg| {
                b.iter(|| build_profile_model(&tb, &kernels, cfg).unwrap());
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sparse_regression_fit", trials),
            &cfg,
            |b, cfg| {
                b.iter(|| fit_empirical_model(&tb, &kernels, cfg).unwrap());
            },
        );
    }
    g.finish();
}

/// Stop-rule ablation: HCPA's global-area rule vs MCPA's per-level rule on
/// identical inputs.
fn bench_stop_rules(c: &mut Criterion) {
    let params = DagGenParams {
        tasks: 20,
        input_matrices: 8,
        add_ratio: 0.5,
        matrix_size: 3000,
    };
    let dag = generate(&params, 3);
    let cluster = ClusterSpec::bayreuth().build().unwrap();
    let model = AnalyticModel::paper_jvm();
    let mut g = c.benchmark_group("ablation_stop_rule");
    for algo in [&Hcpa as &dyn Scheduler, &Mcpa] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| algo.schedule(&dag, &cluster, &model).est_makespan);
        });
    }
    g.finish();
}

fn fast_criterion() -> Criterion {
    // Keep the full suite runnable in a couple of minutes: these benches
    // guard against order-of-magnitude regressions, not microsecond drift.
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = ablation_benches;
    config = fast_criterion();
    targets =
        bench_dag_size_scaling,
    bench_cluster_size_scaling,
    bench_profiling_effort,
    bench_stop_rules,
);
criterion_main!(ablation_benches);
