//! Criterion benchmark crate; see the `benches/` directory: `figures` (one bench per table/figure), `components` (microbenches), `ablations` (scaling and design-choice sweeps).
