//! # mps-stats — statistics and figure-data helpers
//!
//! Descriptive statistics (quantiles, Tukey box plots for Figure 8),
//! simulation-error metrics (relative makespans, sign-agreement counts for
//! Figures 1/5/7), streaming quantile sketches for unbounded event
//! streams, and plain-text renderers for all the paper's figure styles.

#![warn(missing_docs)]

pub mod ascii;
pub mod descriptive;
pub mod error;
pub mod rank;
pub mod streaming;

pub use ascii::{boxplots, paired_bars, profile, surface};
pub use descriptive::{boxplot, median, quantile, summary, BoxPlot, Summary};
pub use error::{
    abs_relative_error_pct, count_agreement, relative_error, relative_makespan, verdict,
    AgreementCounts, Verdict,
};
pub use rank::{kendall_tau, pearson, spearman};
pub use streaming::{P2Quantile, QuantileSketch};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantiles are monotone in q and bounded by min/max.
        #[test]
        fn quantile_monotone(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
            qa in 0.0f64..1.0,
            qb in 0.0f64..1.0,
        ) {
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            let a = quantile(&xs, lo).unwrap();
            let b = quantile(&xs, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
            let s = summary(&xs).unwrap();
            prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
        }

        /// Box-plot invariants: q1 ≤ median ≤ q3, whiskers bracket the box,
        /// and outliers lie strictly outside the whiskers.
        #[test]
        fn boxplot_invariants(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..60),
        ) {
            let b = boxplot(&xs).unwrap();
            prop_assert!(b.q1 <= b.median + 1e-9);
            prop_assert!(b.median <= b.q3 + 1e-9);
            // Note: `whisker_lo ≤ q1` does NOT always hold with
            // interpolated quantiles (a quartile can fall between an
            // outlier and the first in-range point); the median, however,
            // is always inside the whisker span.
            prop_assert!(b.whisker_lo <= b.median + 1e-9);
            prop_assert!(b.whisker_hi >= b.median - 1e-9);
            for &o in &b.outliers {
                prop_assert!(o < b.whisker_lo || o > b.whisker_hi);
            }
            // Conservation: outliers + in-range points = all points.
            let inside = xs
                .iter()
                .filter(|&&x| x >= b.whisker_lo && x <= b.whisker_hi)
                .count();
            prop_assert_eq!(inside + b.outliers.len(), xs.len());
        }

        /// Agreement counts partition the series.
        #[test]
        fn agreement_partitions(
            pairs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..40),
        ) {
            let sim: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let exp: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let c = count_agreement(&sim, &exp, 1e-3);
            prop_assert_eq!(c.total(), pairs.len());
        }
    }
}
