//! Plain-text renderers for the paper's figure styles.
//!
//! The experiment harness regenerates each figure's *data*; these renderers
//! give a quick visual check in the terminal: paired bar charts
//! (Figures 1/5/7), line-ish profiles (Figures 2/3/6), a surface table
//! (Figure 4), and box-and-whisker strips (Figure 8).

use crate::descriptive::BoxPlot;

/// Renders a paired bar chart of two series sharing an x-axis (simulation
/// vs experiment). Bars are horizontal; zero is a centre column.
pub fn paired_bars(
    title: &str,
    labels: &[String],
    sim: &[f64],
    exp: &[f64],
    width: usize,
) -> String {
    assert_eq!(labels.len(), sim.len());
    assert_eq!(labels.len(), exp.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max_abs = sim
        .iter()
        .chain(exp)
        .fold(0.0_f64, |m, &v| m.max(v.abs()))
        .max(1e-12);
    let half = (width / 2).max(1);
    let bar = |v: f64| -> String {
        let cells = ((v.abs() / max_abs) * half as f64).round() as usize;
        let mut s = vec![' '; 2 * half + 1];
        s[half] = '|';
        if v < 0.0 {
            for c in s.iter_mut().take(half).skip(half - cells.min(half)) {
                *c = '#';
            }
        } else {
            for c in s.iter_mut().skip(half + 1).take(cells.min(half)) {
                *c = '#';
            }
        }
        s.into_iter().collect()
    };
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    for i in 0..labels.len() {
        out.push_str(&format!(
            "{:label_w$}  sim {} {:+8.3}\n{:label_w$}  exp {} {:+8.3}\n",
            labels[i],
            bar(sim[i]),
            sim[i],
            "",
            bar(exp[i]),
            exp[i],
        ));
    }
    out
}

/// Renders an `x → y` profile as an aligned two-column listing with a spark
/// bar (Figures 2, 3, 6 are 1-D profiles over `p`).
pub fn profile(title: &str, xs: &[f64], ys: &[f64], width: usize) -> String {
    assert_eq!(xs.len(), ys.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = ys.iter().copied().fold(0.0_f64, f64::max).max(1e-12);
    for (&x, &y) in xs.iter().zip(ys) {
        let cells = ((y / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{:>6}  {:>12.4}  {}\n",
            x,
            y,
            "#".repeat(cells.min(width))
        ));
    }
    out
}

/// Renders a matrix as a table with row/column headers (Figure 4 surface).
pub fn surface(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(row_labels.len(), values.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>8}", ""));
    for c in col_labels {
        out.push_str(&format!("{c:>10}"));
    }
    out.push('\n');
    for (r, row) in values.iter().enumerate() {
        assert_eq!(row.len(), col_labels.len());
        out.push_str(&format!("{:>8}", row_labels[r]));
        for v in row {
            out.push_str(&format!("{v:>10.1}"));
        }
        out.push('\n');
    }
    out
}

/// Renders labelled box plots on a shared scale (Figure 8).
pub fn boxplots(title: &str, labels: &[String], boxes: &[BoxPlot], width: usize) -> String {
    assert_eq!(labels.len(), boxes.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let hi = boxes
        .iter()
        .flat_map(|b| b.outliers.iter().copied().chain([b.whisker_hi]))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let pos = |v: f64| -> usize { ((v / hi) * (width - 1) as f64).round().max(0.0) as usize };
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    for (label, b) in labels.iter().zip(boxes) {
        let mut line = vec![' '; width];
        let lo = pos(b.whisker_lo);
        let hi = pos(b.whisker_hi).min(width - 1);
        for cell in line.iter_mut().take(hi + 1).skip(lo) {
            *cell = '-';
        }
        let q1 = pos(b.q1);
        let q3 = pos(b.q3).min(width - 1);
        for cell in line.iter_mut().take(q3 + 1).skip(q1) {
            *cell = '=';
        }
        let m = pos(b.median).min(width - 1);
        line[m] = '|';
        for &o in &b.outliers {
            let i = pos(o).min(width - 1);
            line[i] = 'o';
        }
        out.push_str(&format!(
            "{:label_w$} {}  (med {:.1}, q3 {:.1}, max-ish {:.1})\n",
            label,
            line.iter().collect::<String>(),
            b.median,
            b.q3,
            b.whisker_hi,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::boxplot;

    #[test]
    fn paired_bars_renders_all_rows() {
        let labels = vec!["d1".to_string(), "d2".to_string()];
        let s = paired_bars("T", &labels, &[-0.2, 0.3], &[0.1, 0.2], 20);
        assert!(s.starts_with("T\n"));
        assert_eq!(s.matches("sim").count(), 2);
        assert_eq!(s.matches("exp").count(), 2);
        assert!(s.contains('#'));
    }

    #[test]
    fn paired_bars_handles_all_zero() {
        let labels = vec!["d".to_string()];
        let s = paired_bars("T", &labels, &[0.0], &[0.0], 10);
        assert!(!s.contains('#'));
    }

    #[test]
    fn profile_scales_to_max() {
        let s = profile("P", &[1.0, 2.0], &[1.0, 2.0], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].matches('#').count() >= lines[1].matches('#').count());
    }

    #[test]
    fn surface_has_headers_and_rows() {
        let s = surface(
            "S",
            &["r1".to_string()],
            &["c1".to_string(), "c2".to_string()],
            &[vec![1.0, 2.0]],
        );
        assert!(s.contains("c1"));
        assert!(s.contains("r1"));
        assert!(s.contains("2.0"));
    }

    #[test]
    fn boxplots_render_median_marker() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = boxplot(&xs).unwrap();
        let s = boxplots("B", &["x".to_string()], &[b], 40);
        assert!(s.contains('|'));
        assert!(s.contains('='));
    }

    #[test]
    #[should_panic]
    fn paired_bars_validates_lengths() {
        paired_bars("T", &["a".to_string()], &[1.0, 2.0], &[1.0], 10);
    }
}
