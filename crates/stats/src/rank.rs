//! Rank correlation between simulated and measured series.
//!
//! Sign agreement (Figures 1/5/7) only asks "same winner?". Spearman's ρ
//! asks the stronger question: does the simulator *order* the scenarios the
//! way reality does? A simulator with ρ ≈ 1 ranks workloads faithfully even
//! when its absolute errors are large — a useful companion metric the
//! harness reports next to Figure 8.

/// Average ranks (ties share their mean rank), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Tie group [i, j).
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        let mean_rank = ((i + 1 + j) as f64) / 2.0;
        for &idx in &order[i..j] {
            out[idx] = mean_rank;
        }
        i = j;
    }
    out
}

/// Pearson correlation of two equal-length series. `None` when either
/// series is constant or shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation. `None` for constant or too-short series.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    pearson(&ranks(xs), &ranks(ys))
}

/// Kendall's τ-a (concordant − discordant pairs over all pairs). `None`
/// for series shorter than 2.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let dx = (xs[i] - xs[j]).signum();
            let dy = (ys[i] - ys[j]).signum();
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_agreement() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_inversion() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based_not_linear() {
        // y = exp(x) is nonlinear but perfectly monotone.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn ties_share_mean_ranks() {
        let r = ranks(&[5.0, 1.0, 5.0]);
        assert_eq!(r[1], 1.0);
        assert_eq!(r[0], 2.5);
        assert_eq!(r[2], 2.5);
    }

    #[test]
    fn constant_series_is_none() {
        assert!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn short_series_is_none() {
        assert!(spearman(&[1.0], &[1.0]).is_none());
        assert!(kendall_tau(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn partial_agreement_is_between() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 3.0, 2.0, 4.0]; // one swapped pair
        let tau = kendall_tau(&xs, &ys).unwrap();
        assert!(tau > 0.0 && tau < 1.0);
        let rho = spearman(&xs, &ys).unwrap();
        assert!(rho > 0.0 && rho < 1.0);
    }
}
