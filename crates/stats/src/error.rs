//! Simulation-error metrics and sign-agreement accounting.
//!
//! The paper's headline numbers are of two kinds:
//!
//! * **makespan simulation error** — how far a simulated makespan is from
//!   the experimental one (Figure 8 reports its distribution per simulator
//!   and algorithm, in percent);
//! * **verdict (sign) agreement** — whether simulation and experiment agree
//!   on *which algorithm wins* for a given DAG (Figures 1, 5, 7: "for 16 of
//!   the 27 DAGs, relying on simulations leads to a result that is the
//!   opposite of the experimental result").

/// Signed relative error `(predicted − actual) / actual`.
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    (predicted - actual) / actual
}

/// Absolute relative error in percent, the paper's Fig. 8 metric.
pub fn abs_relative_error_pct(predicted: f64, actual: f64) -> f64 {
    relative_error(predicted, actual).abs() * 100.0
}

/// Relative makespan of algorithm A versus algorithm B:
/// `(m_A − m_B) / m_B`. Negative ⇒ A is faster — the y-axis of
/// Figures 1, 5 and 7 (A = HCPA, B = MCPA).
pub fn relative_makespan(a: f64, b: f64) -> f64 {
    (a - b) / b
}

/// Outcome of comparing a simulated verdict with the experimental one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Simulation and experiment pick the same winner.
    Agree,
    /// They pick opposite winners.
    Disagree,
    /// At least one side is a tie (within `tie_eps`).
    Tie,
}

/// Compares the signs of two relative-makespan values.
pub fn verdict(simulated: f64, experimental: f64, tie_eps: f64) -> Verdict {
    let s = if simulated.abs() <= tie_eps {
        0
    } else {
        simulated.signum() as i32
    };
    let e = if experimental.abs() <= tie_eps {
        0
    } else {
        experimental.signum() as i32
    };
    if s == 0 || e == 0 {
        Verdict::Tie
    } else if s == e {
        Verdict::Agree
    } else {
        Verdict::Disagree
    }
}

/// Agreement counts over paired series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AgreementCounts {
    /// Same winner.
    pub agree: usize,
    /// Opposite winner.
    pub disagree: usize,
    /// A tie on either side.
    pub ties: usize,
}

impl AgreementCounts {
    /// Total pairs.
    pub fn total(&self) -> usize {
        self.agree + self.disagree + self.ties
    }

    /// Fraction of disagreements (ties excluded from the numerator, kept in
    /// the denominator — the paper reports "16 out of the 27 DAGs").
    pub fn disagree_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.disagree as f64 / self.total() as f64
        }
    }
}

/// Counts verdicts over paired relative-makespan series.
pub fn count_agreement(simulated: &[f64], experimental: &[f64], tie_eps: f64) -> AgreementCounts {
    assert_eq!(simulated.len(), experimental.len());
    let mut out = AgreementCounts::default();
    for (&s, &e) in simulated.iter().zip(experimental) {
        match verdict(s, e, tie_eps) {
            Verdict::Agree => out.agree += 1,
            Verdict::Disagree => out.disagree += 1,
            Verdict::Tie => out.ties += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) + 0.1).abs() < 1e-12);
        assert_eq!(abs_relative_error_pct(90.0, 100.0), 10.0);
    }

    #[test]
    fn relative_makespan_matches_figure_convention() {
        // HCPA faster (80 vs 100) → negative.
        assert!(relative_makespan(80.0, 100.0) < 0.0);
        assert!((relative_makespan(80.0, 100.0) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn verdict_classification() {
        assert_eq!(verdict(-0.1, -0.3, 0.0), Verdict::Agree);
        assert_eq!(verdict(0.1, -0.3, 0.0), Verdict::Disagree);
        assert_eq!(verdict(0.0, -0.3, 0.0), Verdict::Tie);
        assert_eq!(verdict(0.005, -0.3, 0.01), Verdict::Tie);
    }

    #[test]
    fn agreement_counting() {
        let sim = [-0.2, 0.1, -0.1, 0.0];
        let exp = [-0.3, -0.1, -0.2, 0.5];
        let c = count_agreement(&sim, &exp, 0.0);
        assert_eq!(c.agree, 2);
        assert_eq!(c.disagree, 1);
        assert_eq!(c.ties, 1);
        assert_eq!(c.total(), 4);
        assert!((c.disagree_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_fraction() {
        // 16 disagreements out of 27 ≈ 60 %.
        let c = AgreementCounts {
            agree: 11,
            disagree: 16,
            ties: 0,
        };
        assert!((c.disagree_fraction() - 16.0 / 27.0).abs() < 1e-12);
        assert!(c.disagree_fraction() > 0.59);
    }

    #[test]
    fn empty_series() {
        let c = count_agreement(&[], &[], 0.0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.disagree_fraction(), 0.0);
    }
}
