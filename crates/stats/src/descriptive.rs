//! Descriptive statistics: summaries, quantiles, box-and-whisker data.

/// Basic summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes a [`Summary`]; `None` for an empty sample.
pub fn summary(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Some(Summary {
        n: xs.len(),
        mean,
        std: var.sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    })
}

/// Quantile with linear interpolation between order statistics
/// (type-7 / the R default). `q` is clamped to `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50 % quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Box-and-whisker data in Tukey's convention: whiskers extend to the most
/// extreme points within 1.5·IQR of the quartiles; everything beyond is an
/// outlier. This is the format of the paper's Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxPlot {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lower whisker end.
    pub whisker_lo: f64,
    /// Upper whisker end.
    pub whisker_hi: f64,
    /// Points beyond the whiskers.
    pub outliers: Vec<f64>,
}

/// Computes Tukey box-plot data; `None` for an empty sample.
pub fn boxplot(xs: &[f64]) -> Option<BoxPlot> {
    if xs.is_empty() {
        return None;
    }
    let q1 = quantile(xs, 0.25)?;
    let med = quantile(xs, 0.5)?;
    let q3 = quantile(xs, 0.75)?;
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let mut whisker_lo = f64::INFINITY;
    let mut whisker_hi = f64::NEG_INFINITY;
    let mut outliers = Vec::new();
    for &x in xs {
        if x < lo_fence || x > hi_fence {
            outliers.push(x);
        } else {
            whisker_lo = whisker_lo.min(x);
            whisker_hi = whisker_hi.max(x);
        }
    }
    // Degenerate: all points are outliers cannot happen (median is inside),
    // but guard anyway.
    if !whisker_lo.is_finite() {
        whisker_lo = med;
        whisker_hi = med;
    }
    outliers.sort_by(f64::total_cmp);
    Some(BoxPlot {
        q1,
        median: med,
        q3,
        whisker_lo,
        whisker_hi,
        outliers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summary(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25_f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(summary(&[]).is_none());
        assert!(quantile(&[], 0.5).is_none());
        assert!(boxplot(&[]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&a, 0.5), quantile(&b, 0.5));
        assert_eq!(median(&a).unwrap(), 3.0);
    }

    #[test]
    fn boxplot_without_outliers() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = boxplot(&xs).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn boxplot_detects_outliers() {
        let mut xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        xs.push(100.0);
        let b = boxplot(&xs).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi <= 9.0 + 1e-12);
    }

    #[test]
    fn boxplot_constant_sample() {
        let xs = [4.0; 6];
        let b = boxplot(&xs).unwrap();
        assert_eq!(b.median, 4.0);
        assert_eq!(b.whisker_lo, 4.0);
        assert_eq!(b.whisker_hi, 4.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -0.5).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.5).unwrap(), 2.0);
    }
}
