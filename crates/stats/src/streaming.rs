//! Streaming quantile estimation: the P² (P-squared) algorithm.
//!
//! Jain & Chlamtac's P² estimator tracks one quantile of an unbounded
//! stream in **five fixed markers** — no samples are stored, so a
//! million-event run costs the same memory as a ten-event run. The
//! update is a handful of float operations and fully deterministic:
//! the same observation sequence always yields the same estimate,
//! which the online engine's byte-identical trace contract relies on.
//!
//! [`QuantileSketch`] bundles the common SLO trio (p50/p99/p999) with
//! exact count/mean/min/max accumulators.

/// Streaming estimator of one quantile via the P² algorithm.
///
/// Until five observations have arrived the estimator buffers them and
/// answers with the exact order statistic; from the sixth observation on
/// it maintains five markers whose heights approximate the quantile with
/// piecewise-parabolic interpolation.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (sorted observations while `count < 5`).
    heights: [f64; 5],
    /// Actual marker positions, 1-based.
    pos: [f64; 5],
    /// Desired marker positions.
    want: [f64; 5],
    /// Desired-position increments per observation.
    step: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator for quantile `q` in `[0, 1]` (e.g. `0.99` for p99).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            step: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation. Non-finite values are ignored (a NaN would
    /// poison every marker).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            let n = self.count as usize;
            self.heights[n] = x;
            self.count += 1;
            let live = self.count as usize;
            self.heights[..live].sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return;
        }
        // Find the cell k with q[k] <= x < q[k+1], clamping the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        for p in self.pos[k + 1..].iter_mut() {
            *p += 1.0;
        }
        for (w, s) in self.want.iter_mut().zip(self.step) {
            *w += s;
        }
        self.count += 1;
        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.want[i] - self.pos[i];
            if (d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0)
                || (d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0)
            {
                let d = d.signum();
                let h = self.parabolic(i, d);
                self.heights[i] = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, d)
                };
                self.pos[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by
    /// `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (self.pos[i - 1], self.pos[i], self.pos[i + 1]);
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    /// Linear fallback when the parabola would break marker monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i] + d * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate, or `None` before the first observation. Exact
    /// while fewer than five observations have arrived.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as usize;
        if n <= 5 {
            // Exact order statistic (nearest-rank on the sorted buffer).
            let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
            return Some(self.heights[rank - 1]);
        }
        Some(self.heights[2])
    }
}

/// The SLO trio — p50/p99/p999 — plus exact count/mean/min/max, all in
/// fixed memory. This is the sketch the online engine and the daemon's
/// per-request latency stats share.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    p50: P2Quantile,
    p99: P2Quantile,
    p999: P2Quantile,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            p50: P2Quantile::new(0.50),
            p99: P2Quantile::new(0.99),
            p999: P2Quantile::new(0.999),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation into all three estimators.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.p50.observe(x);
        self.p99.observe(x);
        self.p999.observe(x);
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Median estimate (0 when empty).
    pub fn p50(&self) -> f64 {
        self.p50.estimate().unwrap_or(0.0)
    }

    /// 99th-percentile estimate (0 when empty).
    pub fn p99(&self) -> f64 {
        self.p99.estimate().unwrap_or(0.0)
    }

    /// 99.9th-percentile estimate (0 when empty).
    pub fn p999(&self) -> f64 {
        self.p999.estimate().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform-ish stream (splitmix64 → [0, 1)).
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn exact_quantile(xs: &[f64], q: f64) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    #[test]
    fn exact_below_five_observations() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        for (i, x) in [5.0, 1.0, 3.0].iter().enumerate() {
            p.observe(*x);
            assert_eq!(p.count(), i as u64 + 1);
        }
        // Sorted buffer [1,3,5], nearest-rank median = 3.
        assert_eq!(p.estimate(), Some(3.0));
    }

    #[test]
    fn tracks_uniform_quantiles_closely() {
        let xs = stream(42, 50_000);
        for (q, tol) in [(0.5, 0.02), (0.99, 0.01), (0.999, 0.005)] {
            let mut p = P2Quantile::new(q);
            for &x in &xs {
                p.observe(x);
            }
            let est = p.estimate().unwrap();
            let exact = exact_quantile(&xs, q);
            assert!(
                (est - exact).abs() < tol,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn deterministic_across_replays() {
        let xs = stream(7, 10_000);
        let run = || {
            let mut s = QuantileSketch::new();
            for &x in &xs {
                s.observe(x * 1e3);
            }
            (s.p50().to_bits(), s.p99().to_bits(), s.p999().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sketch_accumulators_are_exact() {
        let mut s = QuantileSketch::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        for x in [2.0, 4.0, 6.0] {
            s.observe(x);
        }
        s.observe(f64::NAN); // ignored
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
    }

    #[test]
    fn markers_stay_monotone_under_adversarial_input() {
        // Descending, ascending, then alternating spikes.
        let mut p = P2Quantile::new(0.9);
        let mut xs: Vec<f64> = (0..1000).map(|i| 1000.0 - i as f64).collect();
        xs.extend((0..1000).map(|i| i as f64));
        xs.extend((0..1000).map(|i| if i % 2 == 0 { 1e6 } else { -1e6 }));
        for x in xs {
            p.observe(x);
            // Below five observations only the first `count` buffer slots
            // are live; the rest still hold the zero fill.
            let live = p.count().min(5) as usize;
            for w in p.heights[..live].windows(2) {
                assert!(w[0] <= w[1], "markers out of order: {:?}", p.heights);
            }
        }
    }
}
