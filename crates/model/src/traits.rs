//! The performance-model interface shared by schedulers and simulators.
//!
//! Each of the paper's three simulator versions is the same simulation
//! engine wired to a different *performance model*:
//!
//! | version   | task time            | startup | redistribution overhead |
//! |-----------|----------------------|---------|--------------------------|
//! | analytic  | flop counts via L07  | none    | none                     |
//! | profile   | measured lookup      | table   | table (by `p_dst`)       |
//! | empirical | regression curves    | `a·p+b` | `a·p_dst+b`              |
//!
//! Schedulers consult the same model for their `T(t, p)` estimates, so a
//! simulator version computes schedules *and* makespans under one coherent
//! world-view — matching the paper's methodology where each refined
//! simulator re-runs the scheduling algorithms.

use mps_kernels::Kernel;

/// A model of task execution times and environment overheads.
pub trait PerfModel {
    /// Short name for reports (`analytic`, `profile`, `empirical`).
    fn name(&self) -> &'static str;

    /// Predicted wall-clock execution time (seconds) of `kernel` on `p`
    /// processors, **excluding** the task startup overhead.
    fn task_time(&self, kernel: Kernel, p: usize) -> f64;

    /// Task startup overhead (seconds) for an allocation of `p` processors
    /// (JVM spawning via SSH in the paper's TGrid environment). Zero for
    /// the analytic model — that is one of its identified flaws (§V-C b).
    fn startup_overhead(&self, _p: usize) -> f64 {
        0.0
    }

    /// Data-redistribution protocol overhead (seconds) for a transfer from
    /// a `p_src`-processor task to a `p_dst`-processor task (subnet-manager
    /// registration in TGrid). Zero for the analytic model (§V-C c).
    fn redist_overhead(&self, _p_src: usize, _p_dst: usize) -> f64 {
        0.0
    }

    /// When true, the simulator should simulate the task's internals
    /// analytically (flop vector + communication matrix through the L07
    /// engine) rather than treating [`PerfModel::task_time`] as a fixed
    /// occupation duration. Only the analytic model returns true: profiles
    /// already embody the internal communication of the measured runs.
    fn simulate_task_analytically(&self) -> bool {
        false
    }
}

/// Blanket impl so a shared model is as cheap to hand to a simulator as a
/// pointer copy: grids construct thousands of simulators per campaign, and
/// `Arc<ProfileModel>` clones must not deep-copy the measurement tables.
impl<M: PerfModel + ?Sized> PerfModel for std::sync::Arc<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn task_time(&self, kernel: Kernel, p: usize) -> f64 {
        (**self).task_time(kernel, p)
    }
    fn startup_overhead(&self, p: usize) -> f64 {
        (**self).startup_overhead(p)
    }
    fn redist_overhead(&self, p_src: usize, p_dst: usize) -> f64 {
        (**self).redist_overhead(p_src, p_dst)
    }
    fn simulate_task_analytically(&self) -> bool {
        (**self).simulate_task_analytically()
    }
}

/// Blanket impl so `&M` and boxed models work wherever a model is expected.
impl<M: PerfModel + ?Sized> PerfModel for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn task_time(&self, kernel: Kernel, p: usize) -> f64 {
        (**self).task_time(kernel, p)
    }
    fn startup_overhead(&self, p: usize) -> f64 {
        (**self).startup_overhead(p)
    }
    fn redist_overhead(&self, p_src: usize, p_dst: usize) -> f64 {
        (**self).redist_overhead(p_src, p_dst)
    }
    fn simulate_task_analytically(&self) -> bool {
        (**self).simulate_task_analytically()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl PerfModel for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn task_time(&self, _k: Kernel, p: usize) -> f64 {
            10.0 / p as f64
        }
    }

    #[test]
    fn defaults_are_zero_overhead_fixed_duration() {
        let m = Fixed;
        assert_eq!(m.startup_overhead(8), 0.0);
        assert_eq!(m.redist_overhead(4, 8), 0.0);
        assert!(!m.simulate_task_analytically());
    }

    #[test]
    fn reference_blanket_impl() {
        fn takes_model(m: impl PerfModel) -> f64 {
            m.task_time(Kernel::MatMul { n: 100 }, 2)
        }
        let m = Fixed;
        assert_eq!(takes_model(&m), 5.0);
        assert_eq!(m.name(), "fixed");
    }

    #[test]
    fn arc_blanket_impl_shares_without_copying() {
        let m = std::sync::Arc::new(Fixed);
        let clone = m.clone();
        assert!(std::sync::Arc::ptr_eq(&m, &clone));
        assert_eq!(clone.task_time(Kernel::MatMul { n: 100 }, 5), 2.0);
        assert_eq!(clone.name(), "fixed");
        assert_eq!(clone.startup_overhead(4), 0.0);
        assert_eq!(clone.redist_overhead(2, 4), 0.0);
        assert!(!clone.simulate_task_analytically());
    }
}
