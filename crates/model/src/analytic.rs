//! The purely analytical performance model (§IV).
//!
//! Task execution time is the kernel's per-processor flop count divided by
//! the benchmarked machine rate (250 MFlop/s for the paper's JVM kernels,
//! 4165.3 MFLOPS for PDGEMM on the Cray XT4). No startup overhead, no
//! redistribution overhead — those omissions are exactly what §V-C
//! identifies as the root causes of the analytic simulator's uselessness.

use mps_kernels::Kernel;
use mps_platform::Cluster;

use crate::traits::PerfModel;

/// The analytic model: `T(kernel, p) = flops_per_proc(kernel, p) / rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticModel {
    /// Machine flop rate used for predictions (flops/s).
    pub flops_per_sec: f64,
}

impl AnalyticModel {
    /// The paper's JVM-benchmarked rate: 250 MFlop/s.
    pub fn paper_jvm() -> Self {
        AnalyticModel {
            flops_per_sec: 250.0e6,
        }
    }

    /// The paper's Cray XT4 (Franklin) measured rate for PDGEMM:
    /// 4165.3 MFLOPS.
    pub fn cray_pdgemm() -> Self {
        AnalyticModel {
            flops_per_sec: 4165.3e6,
        }
    }

    /// A model matching a platform's nominal host speed.
    pub fn for_cluster(cluster: &Cluster) -> Self {
        AnalyticModel {
            flops_per_sec: cluster.host_speed(mps_platform::HostId(0)),
        }
    }
}

impl PerfModel for AnalyticModel {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn task_time(&self, kernel: Kernel, p: usize) -> f64 {
        kernel.flops_per_proc(p) / self.flops_per_sec
    }

    fn simulate_task_analytically(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_serial_time_is_64s() {
        let m = AnalyticModel::paper_jvm();
        assert!((m.task_time(Kernel::MatMul { n: 2000 }, 1) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_scaling() {
        let m = AnalyticModel::paper_jvm();
        let k = Kernel::MatMul { n: 2000 };
        for p in [2usize, 4, 8, 16, 32] {
            let expected = 64.0 / p as f64;
            assert!((m.task_time(k, p) - expected).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn addition_is_8x_cheaper() {
        let m = AnalyticModel::paper_jvm();
        let mm = m.task_time(Kernel::MatMul { n: 3000 }, 4);
        let ma = m.task_time(Kernel::MatAdd { n: 3000 }, 4);
        assert!((mm / ma - 8.0).abs() < 1e-9);
    }

    #[test]
    fn no_overheads_and_analytic_simulation() {
        let m = AnalyticModel::paper_jvm();
        assert_eq!(m.startup_overhead(32), 0.0);
        assert_eq!(m.redist_overhead(16, 32), 0.0);
        assert!(m.simulate_task_analytically());
        assert_eq!(m.name(), "analytic");
    }

    #[test]
    fn cray_model_rate() {
        let m = AnalyticModel::cray_pdgemm();
        // 2·4096³ / 4165.3e6 ≈ 33 s serial.
        let t = m.task_time(Kernel::MatMul { n: 4096 }, 1);
        assert!((t - 2.0 * 4096.0_f64.powi(3) / 4165.3e6).abs() < 1e-9);
    }

    #[test]
    fn for_cluster_matches_platform_speed() {
        let c = Cluster::bayreuth();
        let m = AnalyticModel::for_cluster(&c);
        assert!((m.flops_per_sec - 250.0e6).abs() < 1.0);
    }
}
