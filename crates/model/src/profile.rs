//! The profile-based (brute-force) performance model (§VI).
//!
//! Task times come from a lookup table of measured execution times for
//! **every** allocation size `p = 1..=P` and every kernel instance; startup
//! overheads from a per-`p` table of measured no-op launches; and
//! redistribution overheads from a per-`p_dst` table (the paper observes
//! the overhead "depends mostly on p(dst)" and averages over `p_src`,
//! §VI-C).
//!
//! Allocation sizes outside a table are clamped to the nearest measured
//! point (cannot occur in the paper's setup, where the full range is
//! profiled).

use serde::{Deserialize, Serialize};

use mps_kernels::Kernel;

use crate::traits::PerfModel;

/// Errors when assembling profile tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// A table was empty.
    EmptyTable {
        /// Which table.
        what: &'static str,
    },
    /// A kernel was looked up that has no profile.
    UnknownKernel(Kernel),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::EmptyTable { what } => write!(f, "empty profile table: {what}"),
            ProfileError::UnknownKernel(k) => write!(f, "no profile for kernel {k}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Measured profile tables. Serializable so a profiling run can be saved
/// and reused (in the paper these measurements took dedicated cluster
/// time; caching them is the whole point of §VII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProfileTables {
    /// Per-kernel execution times; `times[p-1]` is the measurement at
    /// allocation `p`.
    pub task: Vec<(Kernel, Vec<f64>)>,
    /// Startup overhead per allocation size; `startup[p-1]`.
    pub startup: Vec<f64>,
    /// Redistribution overhead per destination allocation size;
    /// `redist_by_dst[p_dst-1]` (averaged over `p_src`).
    pub redist_by_dst: Vec<f64>,
}

impl ProfileTables {
    /// Validates non-emptiness of the three tables.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.task.is_empty() || self.task.iter().any(|(_, t)| t.is_empty()) {
            return Err(ProfileError::EmptyTable { what: "task" });
        }
        if self.startup.is_empty() {
            return Err(ProfileError::EmptyTable { what: "startup" });
        }
        if self.redist_by_dst.is_empty() {
            return Err(ProfileError::EmptyTable {
                what: "redist_by_dst",
            });
        }
        Ok(())
    }
}

/// The profile-based model.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileModel {
    tables: ProfileTables,
}

fn clamped(table: &[f64], p: usize) -> f64 {
    let idx = p.saturating_sub(1).min(table.len() - 1);
    table[idx]
}

impl ProfileModel {
    /// Builds the model, validating the tables.
    pub fn new(tables: ProfileTables) -> Result<Self, ProfileError> {
        tables.validate()?;
        Ok(ProfileModel { tables })
    }

    /// The underlying tables.
    pub fn tables(&self) -> &ProfileTables {
        &self.tables
    }

    /// Looks up the exact table entry; errors for unknown kernels (unlike
    /// the trait method, which panics — use this when the kernel set is
    /// dynamic).
    pub fn try_task_time(&self, kernel: Kernel, p: usize) -> Result<f64, ProfileError> {
        self.tables
            .task
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, t)| clamped(t, p))
            .ok_or(ProfileError::UnknownKernel(kernel))
    }
}

impl PerfModel for ProfileModel {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn task_time(&self, kernel: Kernel, p: usize) -> f64 {
        self.try_task_time(kernel, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn startup_overhead(&self, p: usize) -> f64 {
        clamped(&self.tables.startup, p)
    }

    fn redist_overhead(&self, _p_src: usize, p_dst: usize) -> f64 {
        clamped(&self.tables.redist_by_dst, p_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> ProfileTables {
        ProfileTables {
            task: vec![
                (Kernel::MatMul { n: 2000 }, vec![100.0, 55.0, 40.0, 30.0]),
                (Kernel::MatAdd { n: 2000 }, vec![20.0, 11.0, 8.0, 6.0]),
            ],
            startup: vec![0.7, 0.75, 0.8, 0.9],
            redist_by_dst: vec![0.1, 0.12, 0.15, 0.2],
        }
    }

    #[test]
    fn lookups_hit_the_table() {
        let m = ProfileModel::new(tables()).unwrap();
        assert_eq!(m.task_time(Kernel::MatMul { n: 2000 }, 1), 100.0);
        assert_eq!(m.task_time(Kernel::MatMul { n: 2000 }, 3), 40.0);
        assert_eq!(m.task_time(Kernel::MatAdd { n: 2000 }, 4), 6.0);
        assert_eq!(m.startup_overhead(2), 0.75);
        assert_eq!(m.redist_overhead(99, 3), 0.15);
    }

    #[test]
    fn out_of_range_p_clamps() {
        let m = ProfileModel::new(tables()).unwrap();
        assert_eq!(m.task_time(Kernel::MatMul { n: 2000 }, 99), 30.0);
        assert_eq!(m.startup_overhead(0), 0.7);
        assert_eq!(m.redist_overhead(1, 99), 0.2);
    }

    #[test]
    fn unknown_kernel_errors() {
        let m = ProfileModel::new(tables()).unwrap();
        let err = m.try_task_time(Kernel::MatMul { n: 3000 }, 1).unwrap_err();
        assert_eq!(err, ProfileError::UnknownKernel(Kernel::MatMul { n: 3000 }));
    }

    #[test]
    #[should_panic(expected = "no profile for kernel")]
    fn trait_lookup_panics_on_unknown_kernel() {
        let m = ProfileModel::new(tables()).unwrap();
        m.task_time(Kernel::MatMul { n: 3000 }, 1);
    }

    #[test]
    fn empty_tables_are_rejected() {
        let mut t = tables();
        t.startup.clear();
        assert!(ProfileModel::new(t).is_err());
        let mut t = tables();
        t.task.clear();
        assert!(ProfileModel::new(t).is_err());
        let mut t = tables();
        t.redist_by_dst.clear();
        assert!(ProfileModel::new(t).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let t = tables();
        let json = serde_json::to_string(&t).unwrap();
        let back: ProfileTables = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn name_and_fixed_duration_semantics() {
        let m = ProfileModel::new(tables()).unwrap();
        assert_eq!(m.name(), "profile");
        assert!(!m.simulate_task_analytically());
    }
}
