//! The empirical (regression-based) performance model (§VII, Table II).
//!
//! Task execution times are two-parameter regressions against `p`, fitted
//! to a *sparse* set of measurements; startup and redistribution overheads
//! are plain `a·p + b` fits. [`EmpiricalModel::table_ii`] reconstructs the
//! paper's exact published coefficients; [`EmpiricalModel::fit`] rebuilds
//! the same structure from fresh measurements (the harness uses it against
//! the emulated testbed).

use mps_kernels::Kernel;
use mps_regress::{fit_affine, AffineModel, Basis, FitError, PiecewiseModel};

use crate::traits::PerfModel;

/// A fitted task-time curve: single-regime or the paper's piecewise form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskCurve {
    /// One affine model over the whole range (additions in Table II).
    Single(AffineModel),
    /// Piecewise: hyperbolic for `p ≤ split`, linear beyond
    /// (multiplications in Table II).
    Piecewise(PiecewiseModel),
}

impl TaskCurve {
    /// Predicted time at allocation `p`. Clamped below at zero — a
    /// regression extrapolated far outside its sample range can go
    /// negative (Table II's n = 3000 multiplication has b = −25.55).
    pub fn predict(&self, p: usize) -> f64 {
        let raw = match self {
            TaskCurve::Single(m) => m.predict(p as f64),
            TaskCurve::Piecewise(m) => m.predict(p as f64),
        };
        raw.max(0.0)
    }
}

/// Errors from building an empirical model.
#[derive(Debug, Clone, PartialEq)]
pub enum EmpiricalError {
    /// A regression failed.
    Fit(FitError),
    /// A kernel was looked up that has no fitted curve.
    UnknownKernel(Kernel),
}

impl std::fmt::Display for EmpiricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmpiricalError::Fit(e) => write!(f, "regression failed: {e}"),
            EmpiricalError::UnknownKernel(k) => write!(f, "no empirical curve for kernel {k}"),
        }
    }
}

impl std::error::Error for EmpiricalError {}

impl From<FitError> for EmpiricalError {
    fn from(e: FitError) -> Self {
        EmpiricalError::Fit(e)
    }
}

/// The empirical model: per-kernel curves plus affine overhead models.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalModel {
    curves: Vec<(Kernel, TaskCurve)>,
    /// Startup overhead `a·p + b` (seconds).
    pub startup: AffineModel,
    /// Redistribution overhead `a·p_dst + b` (seconds).
    pub redist: AffineModel,
}

/// The sample points the paper uses for the multiplication low regime
/// (outliers at 8 and 16 replaced by 7 and 15, §VII-A).
pub const MM_LOW_POINTS: [usize; 4] = [2, 4, 7, 15];
/// Table II: multiplication high-regime points.
pub const MM_HIGH_POINTS: [usize; 3] = [15, 24, 31];
/// Table II: addition sample points (single regime).
pub const MA_POINTS: [usize; 6] = [2, 4, 7, 15, 24, 31];
/// Table II: overhead sample points.
pub const OVERHEAD_POINTS: [usize; 3] = [1, 16, 32];

impl EmpiricalModel {
    /// Builds a model from explicit parts.
    pub fn new(
        curves: Vec<(Kernel, TaskCurve)>,
        startup: AffineModel,
        redist: AffineModel,
    ) -> Self {
        EmpiricalModel {
            curves,
            startup,
            redist,
        }
    }

    /// The paper's published Table II model (seconds everywhere; the
    /// redistribution coefficients are printed in milliseconds in the
    /// paper and converted here).
    pub fn table_ii() -> Self {
        let mm2000 = TaskCurve::Piecewise(PiecewiseModel::new(
            AffineModel::from_coefficients(Basis::RecipHalf, 239.44, 3.43),
            AffineModel::from_coefficients(Basis::Identity, 0.08, 1.93),
            PiecewiseModel::PAPER_SPLIT,
        ));
        let mm3000 = TaskCurve::Piecewise(PiecewiseModel::new(
            AffineModel::from_coefficients(Basis::Recip, 537.91, -25.55),
            AffineModel::from_coefficients(Basis::Identity, -0.09, 11.47),
            PiecewiseModel::PAPER_SPLIT,
        ));
        let ma2000 = TaskCurve::Single(AffineModel::from_coefficients(Basis::Recip, 22.99, 0.03));
        let ma3000 = TaskCurve::Single(AffineModel::from_coefficients(Basis::Recip, 73.59, 0.38));
        EmpiricalModel {
            curves: vec![
                (Kernel::MatMul { n: 2000 }, mm2000),
                (Kernel::MatMul { n: 3000 }, mm3000),
                (Kernel::MatAdd { n: 2000 }, ma2000),
                (Kernel::MatAdd { n: 3000 }, ma3000),
            ],
            startup: AffineModel::from_coefficients(Basis::Identity, 0.03, 0.65),
            redist: AffineModel::from_coefficients(Basis::Identity, 7.88e-3, 108.58e-3),
        }
    }

    /// Fits the paper's model structure from raw measurements.
    ///
    /// * `task_samples`: per kernel, `(p, seconds)` pairs. Multiplications
    ///   are fitted piecewise (hyperbolic over `p ≤ 16` samples, linear
    ///   over `p ≥ 15` samples); additions with a single hyperbolic model.
    /// * `startup_samples` / `redist_samples`: `(p, seconds)` pairs for the
    ///   affine overhead fits.
    pub fn fit(
        task_samples: &[(Kernel, Vec<(usize, f64)>)],
        startup_samples: &[(usize, f64)],
        redist_samples: &[(usize, f64)],
    ) -> Result<Self, EmpiricalError> {
        let mut curves = Vec::with_capacity(task_samples.len());
        for (kernel, samples) in task_samples {
            let curve = match kernel {
                Kernel::MatMul { .. } => {
                    let low: Vec<(f64, f64)> = samples
                        .iter()
                        .filter(|&&(p, _)| p <= 16)
                        .map(|&(p, t)| (p as f64, t))
                        .collect();
                    let high: Vec<(f64, f64)> = samples
                        .iter()
                        .filter(|&&(p, _)| p >= 15)
                        .map(|&(p, t)| (p as f64, t))
                        .collect();
                    TaskCurve::Piecewise(PiecewiseModel::fit(
                        Basis::Recip,
                        &low,
                        &high,
                        PiecewiseModel::PAPER_SPLIT,
                    )?)
                }
                Kernel::MatAdd { .. } => {
                    let (ps, ts): (Vec<f64>, Vec<f64>) =
                        samples.iter().map(|&(p, t)| (p as f64, t)).unzip();
                    TaskCurve::Single(fit_affine(Basis::Recip, &ps, &ts)?)
                }
            };
            curves.push((*kernel, curve));
        }
        let (sp, st): (Vec<f64>, Vec<f64>) =
            startup_samples.iter().map(|&(p, t)| (p as f64, t)).unzip();
        let (rp, rt): (Vec<f64>, Vec<f64>) =
            redist_samples.iter().map(|&(p, t)| (p as f64, t)).unzip();
        Ok(EmpiricalModel {
            curves,
            startup: fit_affine(Basis::Identity, &sp, &st)?,
            redist: fit_affine(Basis::Identity, &rp, &rt)?,
        })
    }

    /// A scaled copy for a *hypothetical* platform whose nodes are
    /// `speedup`× faster (the paper's conclusion suggests exactly this:
    /// "these models could be instantiated for an existing execution
    /// environment and scaled to simulate an hypothetical execution
    /// environment"). Task-time curves shrink by the speedup; startup and
    /// redistribution overheads are environment costs (SSH/JVM/protocol)
    /// and are left unchanged unless `scale_overheads` is set.
    #[must_use]
    pub fn scaled(&self, speedup: f64, scale_overheads: bool) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        let scale_affine =
            |m: &AffineModel| AffineModel::from_coefficients(m.basis, m.a / speedup, m.b / speedup);
        let curves = self
            .curves
            .iter()
            .map(|&(k, c)| {
                let scaled = match c {
                    TaskCurve::Single(m) => TaskCurve::Single(scale_affine(&m)),
                    TaskCurve::Piecewise(m) => TaskCurve::Piecewise(PiecewiseModel::new(
                        scale_affine(&m.low),
                        scale_affine(&m.high),
                        m.split,
                    )),
                };
                (k, scaled)
            })
            .collect();
        let (startup, redist) = if scale_overheads {
            (scale_affine(&self.startup), scale_affine(&self.redist))
        } else {
            (self.startup, self.redist)
        };
        EmpiricalModel {
            curves,
            startup,
            redist,
        }
    }

    /// The fitted curve for one kernel.
    pub fn curve(&self, kernel: Kernel) -> Result<&TaskCurve, EmpiricalError> {
        self.curves
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, c)| c)
            .ok_or(EmpiricalError::UnknownKernel(kernel))
    }

    /// All fitted curves.
    pub fn curves(&self) -> &[(Kernel, TaskCurve)] {
        &self.curves
    }
}

impl PerfModel for EmpiricalModel {
    fn name(&self) -> &'static str {
        "empirical"
    }

    fn task_time(&self, kernel: Kernel, p: usize) -> f64 {
        self.curve(kernel)
            .unwrap_or_else(|e| panic!("{e}"))
            .predict(p)
    }

    fn startup_overhead(&self, p: usize) -> f64 {
        self.startup.predict(p as f64).max(0.0)
    }

    fn redist_overhead(&self, _p_src: usize, p_dst: usize) -> f64 {
        self.redist.predict(p_dst as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_mm_2000_predictions() {
        let m = EmpiricalModel::table_ii();
        let k = Kernel::MatMul { n: 2000 };
        // p = 2: 239.44/4 + 3.43 ≈ 63.29 s
        assert!((m.task_time(k, 2) - (239.44 / 4.0 + 3.43)).abs() < 1e-9);
        // p = 24: 0.08·24 + 1.93 = 3.85 s
        assert!((m.task_time(k, 24) - 3.85).abs() < 1e-9);
    }

    #[test]
    fn table_ii_mm_3000_low_p_is_large() {
        let m = EmpiricalModel::table_ii();
        let k = Kernel::MatMul { n: 3000 };
        // p = 1: 537.91 − 25.55 ≈ 512 s — far above the analytic 216 s,
        // reflecting the JVM inefficiency the paper measured.
        assert!((m.task_time(k, 1) - 512.36).abs() < 1e-6);
        // p = 31 (linear regime): −0.09·31 + 11.47 = 8.68 s.
        assert!((m.task_time(k, 31) - 8.68).abs() < 1e-9);
    }

    #[test]
    fn table_ii_additions_single_regime() {
        let m = EmpiricalModel::table_ii();
        assert!((m.task_time(Kernel::MatAdd { n: 2000 }, 1) - 23.02).abs() < 1e-9);
        assert!((m.task_time(Kernel::MatAdd { n: 3000 }, 31) - (73.59 / 31.0 + 0.38)).abs() < 1e-9);
    }

    #[test]
    fn table_ii_overheads() {
        let m = EmpiricalModel::table_ii();
        // Startup: 0.03·p + 0.65 seconds.
        assert!((m.startup_overhead(32) - 1.61).abs() < 1e-9);
        // Redistribution: (7.88·p_dst + 108.58) ms.
        assert!((m.redist_overhead(4, 16) - 0.234_66).abs() < 1e-6);
    }

    #[test]
    fn negative_extrapolations_clamp_to_zero() {
        // A curve with a large negative intercept could dip below zero for
        // mid-range p; predictions clamp.
        let curve = TaskCurve::Single(AffineModel::from_coefficients(Basis::Recip, 10.0, -9.0));
        assert_eq!(curve.predict(100), 0.0);
    }

    #[test]
    fn fit_recovers_piecewise_structure() {
        // One coherent ground truth with a regime change at p = 15 (the
        // measurement at p = 15 is shared by both fits, as in Table II).
        let truth_low = |p: f64| 500.0 / p + 5.0;
        let truth_high = |p: f64| 0.2 * (p - 15.0) + truth_low(15.0);
        let mm = Kernel::MatMul { n: 2000 };
        let samples: Vec<(usize, f64)> = MM_LOW_POINTS
            .iter()
            .map(|&p| (p, truth_low(p as f64)))
            .chain(
                MM_HIGH_POINTS
                    .iter()
                    .filter(|&&p| p > 15)
                    .map(|&p| (p, truth_high(p as f64))),
            )
            .collect();
        let ma = Kernel::MatAdd { n: 2000 };
        let ma_samples: Vec<(usize, f64)> = MA_POINTS
            .iter()
            .map(|&p| (p, 40.0 / p as f64 + 0.1))
            .collect();
        let startup: Vec<(usize, f64)> = OVERHEAD_POINTS
            .iter()
            .map(|&p| (p, 0.03 * p as f64 + 0.65))
            .collect();
        let redist: Vec<(usize, f64)> = OVERHEAD_POINTS
            .iter()
            .map(|&p| (p, 0.008 * p as f64 + 0.1))
            .collect();
        let m = EmpiricalModel::fit(&[(mm, samples), (ma, ma_samples)], &startup, &redist).unwrap();
        assert!((m.task_time(mm, 8) - truth_low(8.0)).abs() < 2.0);
        assert!((m.task_time(mm, 24) - truth_high(24.0)).abs() < 0.5);
        assert!((m.task_time(ma, 10) - 4.1).abs() < 1e-6);
        assert!((m.startup_overhead(16) - 1.13).abs() < 1e-9);
    }

    #[test]
    fn fit_with_too_few_points_errors() {
        let mm = Kernel::MatMul { n: 2000 };
        let err = EmpiricalModel::fit(
            &[(mm, vec![(2, 10.0)])],
            &[(1, 0.7), (32, 1.6)],
            &[(1, 0.1), (32, 0.4)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_kernel_errors() {
        let m = EmpiricalModel::table_ii();
        assert!(m.curve(Kernel::MatMul { n: 1024 }).is_err());
    }

    #[test]
    fn name_and_semantics() {
        let m = EmpiricalModel::table_ii();
        assert_eq!(m.name(), "empirical");
        assert!(!m.simulate_task_analytically());
    }

    #[test]
    fn scaled_model_shrinks_task_times_only() {
        let base = EmpiricalModel::table_ii();
        let fast = base.scaled(2.0, false);
        let k = Kernel::MatMul { n: 2000 };
        for p in [1usize, 4, 16, 24, 32] {
            assert!(
                (fast.task_time(k, p) - base.task_time(k, p) / 2.0).abs() < 1e-9,
                "p={p}"
            );
        }
        // Environment overheads untouched.
        assert_eq!(fast.startup_overhead(16), base.startup_overhead(16));
        assert_eq!(fast.redist_overhead(4, 16), base.redist_overhead(4, 16));
    }

    #[test]
    fn scaled_model_can_scale_overheads_too() {
        let base = EmpiricalModel::table_ii();
        let fast = base.scaled(4.0, true);
        assert!((fast.startup_overhead(16) - base.startup_overhead(16) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn scaled_rejects_non_positive_speedup() {
        let _ = EmpiricalModel::table_ii().scaled(0.0, false);
    }

    #[test]
    fn mm_low_regime_uses_p_up_to_16_inclusive() {
        let m = EmpiricalModel::table_ii();
        let k = Kernel::MatMul { n: 2000 };
        // p = 16 is predicted by the hyperbolic regime...
        assert!((m.task_time(k, 16) - (239.44 / 32.0 + 3.43)).abs() < 1e-9);
        // ...and p = 17 by the linear regime.
        assert!((m.task_time(k, 17) - (0.08 * 17.0 + 1.93)).abs() < 1e-9);
    }
}
