//! # mps-model — task-time and overhead performance models
//!
//! The three model families behind the paper's three simulator versions:
//!
//! * [`AnalyticModel`] — flop counts over a benchmarked machine rate (§IV);
//! * [`ProfileModel`] — brute-force measured lookup tables (§VI);
//! * [`EmpiricalModel`] — sparse-sample regressions, including the exact
//!   published Table II coefficients (§VII).
//!
//! All three implement the [`PerfModel`] trait consumed by the schedulers
//! (for their `T(t, p)` estimates) and by the simulators (for task
//! durations and overhead injection).
//!
//! ```
//! use mps_model::{AnalyticModel, EmpiricalModel, PerfModel};
//! use mps_kernels::Kernel;
//!
//! let k = Kernel::MatMul { n: 2000 };
//! let analytic = AnalyticModel::paper_jvm();
//! let empirical = EmpiricalModel::table_ii();
//! // The analytic model underestimates massively at p = 1: 64 s vs the
//! // measured ≈ 123 s the empirical curve reproduces.
//! assert!(empirical.task_time(k, 1) > 1.8 * analytic.task_time(k, 1));
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod empirical;
pub mod profile;
pub mod traits;

pub use analytic::AnalyticModel;
pub use empirical::{
    EmpiricalError, EmpiricalModel, TaskCurve, MA_POINTS, MM_HIGH_POINTS, MM_LOW_POINTS,
    OVERHEAD_POINTS,
};
pub use profile::{ProfileError, ProfileModel, ProfileTables};
pub use traits::PerfModel;

#[cfg(test)]
mod tests {
    use super::*;
    use mps_kernels::Kernel;

    #[test]
    fn models_are_object_safe_behind_references() {
        let analytic = AnalyticModel::paper_jvm();
        let empirical = EmpiricalModel::table_ii();
        let models: Vec<&dyn PerfModel> = vec![&analytic, &empirical];
        let k = Kernel::MatMul { n: 2000 };
        for m in models {
            assert!(m.task_time(k, 4) > 0.0);
        }
    }

    #[test]
    fn analytic_vs_empirical_gap_matches_figure_2_regime() {
        // Fig. 2 (left): the analytic model's relative error for the Java
        // MM reaches tens of percent. Our Table II curve vs the analytic
        // model shows the same magnitude of disagreement across p.
        let analytic = AnalyticModel::paper_jvm();
        let empirical = EmpiricalModel::table_ii();
        for n in [2000usize, 3000] {
            let k = Kernel::MatMul { n };
            let rels: Vec<f64> = (1..=32usize)
                .map(|p| {
                    let pred = analytic.task_time(k, p);
                    let meas = empirical.task_time(k, p);
                    ((pred - meas) / meas).abs()
                })
                .collect();
            let mean = rels.iter().sum::<f64>() / rels.len() as f64;
            let max = rels.iter().copied().fold(0.0, f64::max);
            assert!(mean > 0.2, "n={n} mean rel err {mean}");
            assert!(max > 0.4, "n={n} max rel err {max}");
        }
    }
}
