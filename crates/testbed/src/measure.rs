//! The measurement methodology of §VI–§VII, mirrored against the emulated
//! testbed.
//!
//! * **Brute-force profiling** (§VI-A): time every kernel at every
//!   allocation `p = 1..=32`, average over trials → the profile simulator's
//!   lookup tables.
//! * **Startup measurement** (§VI-B): launch no-op tasks at every `p`,
//!   average over 20 trials (Figure 3).
//! * **Redistribution measurement** (§VI-C): redistribute a mostly-empty
//!   matrix for every `(p_src, p_dst)`, average over 3 trials, then reduce
//!   over `p_src` because the overhead "depends mostly on p(dst)"
//!   (Figure 4).
//! * **Sparse sampling + regression** (§VII-A): measure only at the paper's
//!   sample points and fit the Table II model structure.

use mps_kernels::Kernel;
use mps_model::{
    EmpiricalError, EmpiricalModel, ProfileError, ProfileModel, ProfileTables, MA_POINTS,
    MM_HIGH_POINTS, MM_LOW_POINTS, OVERHEAD_POINTS,
};

use crate::testbed::Testbed;

/// How much measuring to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilingConfig {
    /// Largest allocation measured (the paper's 32).
    pub max_p: usize,
    /// Trials per task measurement.
    pub task_trials: u64,
    /// Trials per startup measurement (the paper uses 20).
    pub startup_trials: u64,
    /// Trials per redistribution measurement (the paper uses 3).
    pub redist_trials: u64,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        ProfilingConfig {
            max_p: 32,
            task_trials: 3,
            startup_trials: 20,
            redist_trials: 3,
        }
    }
}

fn mean(values: impl Iterator<Item = f64>, count: u64) -> f64 {
    values.sum::<f64>() / count as f64
}

/// Full task profiles: `result[k][p-1]` = mean measured time of kernel `k`
/// at allocation `p`.
pub fn profile_tasks(
    tb: &Testbed,
    kernels: &[Kernel],
    cfg: &ProfilingConfig,
) -> Vec<(Kernel, Vec<f64>)> {
    kernels
        .iter()
        .map(|&k| {
            let times = (1..=cfg.max_p)
                .map(|p| {
                    mean(
                        (0..cfg.task_trials).map(|t| tb.time_task_once(k, p, t)),
                        cfg.task_trials,
                    )
                })
                .collect();
            (k, times)
        })
        .collect()
}

/// Startup curve: `result[p-1]` = mean over trials (Figure 3).
pub fn measure_startup_curve(tb: &Testbed, cfg: &ProfilingConfig) -> Vec<f64> {
    (1..=cfg.max_p)
        .map(|p| {
            mean(
                (0..cfg.startup_trials).map(|t| tb.time_startup_once(p, t)),
                cfg.startup_trials,
            )
        })
        .collect()
}

/// Redistribution surface: `result[p_src-1][p_dst-1]` (Figure 4).
pub fn measure_redist_surface(tb: &Testbed, cfg: &ProfilingConfig) -> Vec<Vec<f64>> {
    (1..=cfg.max_p)
        .map(|p_src| {
            (1..=cfg.max_p)
                .map(|p_dst| {
                    mean(
                        (0..cfg.redist_trials)
                            .map(|t| tb.time_redistribution_once(p_src, p_dst, t)),
                        cfg.redist_trials,
                    )
                })
                .collect()
        })
        .collect()
}

/// Reduces the surface over `p_src` (the paper's §VI-C averaging).
pub fn redist_by_dst(surface: &[Vec<f64>]) -> Vec<f64> {
    if surface.is_empty() {
        return Vec::new();
    }
    let cols = surface[0].len();
    (0..cols)
        .map(|d| surface.iter().map(|row| row[d]).sum::<f64>() / surface.len() as f64)
        .collect()
}

/// The §VI brute-force pipeline: full profiles → a profile model.
pub fn build_profile_model(
    tb: &Testbed,
    kernels: &[Kernel],
    cfg: &ProfilingConfig,
) -> Result<ProfileModel, ProfileError> {
    let tables = ProfileTables {
        task: profile_tasks(tb, kernels, cfg),
        startup: measure_startup_curve(tb, cfg),
        redist_by_dst: redist_by_dst(&measure_redist_surface(tb, cfg)),
    };
    ProfileModel::new(tables)
}

/// The §VII sparse pipeline: measure only the paper's sample points and
/// fit the Table II model structure.
///
/// Multiplications use `p ∈ {2, 4, 7, 15}` (hyperbolic) and `{15, 24, 31}`
/// (linear) — the substituted points that dodge the `p = 8, 16` outliers;
/// additions use all six; overheads use `p ∈ {1, 16, 32}`.
pub fn fit_empirical_model(
    tb: &Testbed,
    kernels: &[Kernel],
    cfg: &ProfilingConfig,
) -> Result<EmpiricalModel, EmpiricalError> {
    let task_samples: Vec<(Kernel, Vec<(usize, f64)>)> = kernels
        .iter()
        .map(|&k| {
            let points: Vec<usize> = match k {
                Kernel::MatMul { .. } => {
                    let mut v: Vec<usize> = MM_LOW_POINTS
                        .iter()
                        .chain(MM_HIGH_POINTS.iter())
                        .copied()
                        .collect();
                    v.dedup();
                    v
                }
                Kernel::MatAdd { .. } => MA_POINTS.to_vec(),
            };
            let samples = points
                .into_iter()
                .filter(|&p| p <= cfg.max_p)
                .map(|p| {
                    (
                        p,
                        mean(
                            (0..cfg.task_trials).map(|t| tb.time_task_once(k, p, t)),
                            cfg.task_trials,
                        ),
                    )
                })
                .collect();
            (k, samples)
        })
        .collect();

    let startup_samples: Vec<(usize, f64)> = OVERHEAD_POINTS
        .iter()
        .map(|&p| {
            (
                p,
                mean(
                    (0..cfg.startup_trials).map(|t| tb.time_startup_once(p, t)),
                    cfg.startup_trials,
                ),
            )
        })
        .collect();

    // Redistribution: average over a few p_src values at each sampled
    // p_dst, as the paper reduces over the source dimension.
    let src_probe = [1usize, 8, 16, 24, 32];
    let redist_samples: Vec<(usize, f64)> = OVERHEAD_POINTS
        .iter()
        .map(|&p_dst| {
            let v = src_probe
                .iter()
                .map(|&p_src| {
                    mean(
                        (0..cfg.redist_trials)
                            .map(|t| tb.time_redistribution_once(p_src, p_dst, t)),
                        cfg.redist_trials,
                    )
                })
                .sum::<f64>()
                / src_probe.len() as f64;
            (p_dst, v)
        })
        .collect();

    EmpiricalModel::fit(&task_samples, &startup_samples, &redist_samples)
}

/// The four kernels of the paper's corpus.
pub fn paper_kernels() -> Vec<Kernel> {
    vec![
        Kernel::MatMul { n: 2000 },
        Kernel::MatMul { n: 3000 },
        Kernel::MatAdd { n: 2000 },
        Kernel::MatAdd { n: 3000 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_model::PerfModel;

    fn quick_cfg() -> ProfilingConfig {
        ProfilingConfig {
            max_p: 32,
            task_trials: 2,
            startup_trials: 5,
            redist_trials: 2,
        }
    }

    #[test]
    fn profiles_cover_every_allocation() {
        let tb = Testbed::bayreuth(3);
        let profiles = profile_tasks(&tb, &paper_kernels(), &quick_cfg());
        assert_eq!(profiles.len(), 4);
        for (k, times) in &profiles {
            assert_eq!(times.len(), 32, "{k}");
            assert!(times.iter().all(|&t| t > 0.0));
        }
    }

    #[test]
    fn profile_means_track_ground_truth() {
        let tb = Testbed::bayreuth(3);
        let cfg = ProfilingConfig {
            task_trials: 20,
            ..quick_cfg()
        };
        let profiles = profile_tasks(&tb, &[Kernel::MatMul { n: 2000 }], &cfg);
        let truth = tb.ground_truth();
        for (p, &measured) in profiles[0].1.iter().enumerate() {
            let t = truth.task_time_mean(Kernel::MatMul { n: 2000 }, p + 1);
            assert!(
                (measured / t - 1.0).abs() < 0.05,
                "p={}: {measured} vs {t}",
                p + 1
            );
        }
    }

    #[test]
    fn startup_curve_has_figure_3_shape() {
        let tb = Testbed::bayreuth(3);
        let curve = measure_startup_curve(&tb, &quick_cfg());
        assert_eq!(curve.len(), 32);
        assert!(curve[31] > curve[0], "growing overall");
        assert!(curve.windows(2).any(|w| w[1] < w[0]), "non-monotonic");
    }

    #[test]
    fn redist_surface_and_reduction() {
        let tb = Testbed::bayreuth(3);
        let cfg = ProfilingConfig {
            max_p: 8,
            ..quick_cfg()
        };
        let surface = measure_redist_surface(&tb, &cfg);
        assert_eq!(surface.len(), 8);
        assert_eq!(surface[0].len(), 8);
        let by_dst = redist_by_dst(&surface);
        assert_eq!(by_dst.len(), 8);
        // Dominated by p_dst: the reduced curve grows.
        assert!(by_dst[7] > by_dst[0]);
    }

    #[test]
    fn profile_model_reproduces_measured_values() {
        let tb = Testbed::bayreuth(3);
        let cfg = quick_cfg();
        let model = build_profile_model(&tb, &paper_kernels(), &cfg).unwrap();
        let profiles = profile_tasks(&tb, &paper_kernels(), &cfg);
        for (k, times) in profiles {
            for (i, &t) in times.iter().enumerate() {
                assert_eq!(model.task_time(k, i + 1), t);
            }
        }
    }

    #[test]
    fn empirical_fit_lands_near_table_ii() {
        let tb = Testbed::bayreuth(3);
        let cfg = ProfilingConfig {
            task_trials: 10,
            startup_trials: 20,
            redist_trials: 5,
            max_p: 32,
        };
        let fitted = fit_empirical_model(&tb, &paper_kernels(), &cfg).unwrap();
        let paper = EmpiricalModel::table_ii();
        // Startup fit: slope/intercept within a reasonable band of
        // (0.03, 0.65) — the ground truth wiggles by design.
        assert!((fitted.startup.a - paper.startup.a).abs() < 0.01);
        assert!((fitted.startup.b - paper.startup.b).abs() < 0.15);
        // Redistribution slope within a band of 7.88 ms/proc.
        assert!(
            (fitted.redist.a - paper.redist.a).abs() < 0.006,
            "redist slope {} vs {}",
            fitted.redist.a,
            paper.redist.a
        );
        // Task predictions within a band of the paper curve at small p
        // (the truth's wiggle is ±12 %; the n = 2000 curve additionally
        // enters its linear regime before p = 15, where the paper's own
        // low/high fits contradict each other — see GroundTruth docs).
        for k in paper_kernels() {
            for p in [2usize, 4, 7] {
                let a = fitted.task_time(k, p);
                let b = paper.task_time(k, p);
                assert!(
                    (a / b - 1.0).abs() < 0.30,
                    "{k} p={p}: fitted {a} vs table {b}"
                );
            }
        }
        // The high regime of the n = 2000 multiplication matches the
        // paper's linear model closely (that is where its samples live).
        let k2000 = Kernel::MatMul { n: 2000 };
        for p in [24usize, 31] {
            let a = fitted.task_time(k2000, p);
            let b = paper.task_time(k2000, p);
            assert!(
                (a / b - 1.0).abs() < 0.30,
                "mm2000 p={p}: fitted {a} vs table {b}"
            );
        }
    }

    #[test]
    fn empirical_fit_avoids_the_outliers() {
        // Fitted on {2,4,7,15}, the model must under-predict the planted
        // outlier at (n=3000, p=8) — the Fig. 7 discrepancy mechanism.
        let tb = Testbed::bayreuth(3);
        let fitted = fit_empirical_model(&tb, &paper_kernels(), &quick_cfg()).unwrap();
        let k = Kernel::MatMul { n: 3000 };
        let measured = tb.ground_truth().task_time_mean(k, 8);
        let predicted = fitted.task_time(k, 8);
        assert!(
            measured > 1.15 * predicted,
            "outlier should exceed the fit: {measured} vs {predicted}"
        );
    }
}
