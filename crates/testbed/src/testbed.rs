//! The emulated execution environment ("the experiment").
//!
//! [`Testbed::execute`] plays the role of the paper's real cluster run: it
//! executes a schedule with the **hidden ground-truth** quantities
//! (including run-to-run noise) on a network derated to realistic TCP
//! efficiency. The same execution engine as the simulators is used
//! (`mps-sim::executor`), so any makespan difference comes from the
//! *quantities*, which is precisely the effect the paper studies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};

use mps_dag::{Dag, TaskId};
use mps_faults::{FaultPlan, ScriptedFaults};
use mps_kernels::Kernel;
use mps_platform::{Cluster, ClusterSpec, HostId};
use mps_sched::Schedule;
use mps_sim::{
    execute, execute_disturbed_with_slab_prevalidated, execute_with_policy,
    execute_with_slab_prevalidated, DisturbSetup, ExecError, ExecPolicy, ExecSlab, ExecutionModel,
    ExecutionResult, FaultyExecution, TaskExecution,
};

use mps_faults::DisturbReport;

use crate::ground_truth::GroundTruth;

/// Relative run-to-run noise (log-normal σ) of task executions.
pub const TASK_NOISE_SIGMA: f64 = 0.035;
/// Relative noise of startup measurements.
pub const STARTUP_NOISE_SIGMA: f64 = 0.08;
/// Relative noise of redistribution overhead measurements.
pub const REDIST_NOISE_SIGMA: f64 = 0.06;

/// The emulated cluster + runtime environment.
#[derive(Debug, Clone)]
pub struct Testbed {
    truth: GroundTruth,
    cluster: Cluster,
    /// Base seed: every execution/measurement derives its noise stream
    /// from this plus a caller-provided run seed.
    pub base_seed: u64,
}

impl Testbed {
    /// The emulated Bayreuth cluster (32 nodes), with network bandwidth
    /// derated by the ground truth's TCP efficiency.
    pub fn bayreuth(base_seed: u64) -> Self {
        Self::with_truth(GroundTruth::bayreuth(), base_seed)
    }

    /// A testbed over an explicit ground truth.
    pub fn with_truth(truth: GroundTruth, base_seed: u64) -> Self {
        let mut spec = ClusterSpec::bayreuth();
        spec.link_bandwidth *= truth.network_efficiency;
        spec.backbone_bandwidth *= truth.network_efficiency;
        Testbed {
            truth,
            cluster: spec.build().expect("derated spec is valid"),
            base_seed,
        }
    }

    /// The *nominal* platform a simulator would be configured with
    /// (undeterated network) — what the paper's authors typed into their
    /// SimGrid platform file.
    pub fn nominal_cluster(&self) -> Cluster {
        Cluster::bayreuth()
    }

    /// The hidden truth — test-only introspection. Simulation code must
    /// not call this; use the measurement APIs.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// The emulated (derated) platform the testbed executes on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn rng_for(&self, stream: u64, run: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream)
                .rotate_left(17)
                .wrapping_add(run),
        )
    }

    /// Executes a schedule "for real" and reports the measured result.
    /// Deterministic in `(self.base_seed, run_seed)`.
    pub fn execute(
        &self,
        dag: &Dag,
        schedule: &Schedule,
        run_seed: u64,
    ) -> Result<ExecutionResult, ExecError> {
        let mut model = TestbedRun::new(&self.truth, self.rng_for(0xE0EC, run_seed));
        execute(dag, &self.cluster, schedule, &mut model)
    }

    /// [`Testbed::execute`] reusing a caller-owned [`ExecSlab`], skipping
    /// the schedule-validation pass. Bit-identical to [`Testbed::execute`]
    /// **provided** the caller has already validated `schedule` against
    /// `dag` and a 32-node cluster (validation only consults the node
    /// count, so validating against the nominal cluster covers the derated
    /// one). The harness validates once per cell and then runs the same
    /// schedule once in the simulator and several times here.
    pub fn execute_prevalidated_with_slab(
        &self,
        slab: &mut ExecSlab,
        dag: &Dag,
        schedule: &Schedule,
        run_seed: u64,
    ) -> Result<ExecutionResult, ExecError> {
        let mut model = TestbedRun::new(&self.truth, self.rng_for(0xE0EC, run_seed));
        execute_with_slab_prevalidated(
            slab,
            dag,
            &self.cluster,
            schedule,
            &mut model,
            &ExecPolicy::default(),
        )
    }

    /// [`Testbed::execute`] under an injected [`FaultPlan`]: the run plays
    /// out with the same hidden ground-truth quantities, but nodes crash,
    /// slow down, and links degrade as the plan scripts. Retries, backoff,
    /// and the watchdog come from `policy`. Deterministic in
    /// `(self.base_seed, run_seed, plan)`.
    pub fn execute_with_faults(
        &self,
        dag: &Dag,
        schedule: &Schedule,
        run_seed: u64,
        plan: &FaultPlan,
        policy: &ExecPolicy,
    ) -> Result<ExecutionResult, ExecError> {
        let inner = TestbedRun::new(&self.truth, self.rng_for(0xE0EC, run_seed));
        let mut model = FaultyExecution::new(inner, ScriptedFaults::new(plan.clone()));
        execute_with_policy(dag, &self.cluster, schedule, &mut model, policy)
    }

    /// [`Testbed::execute_with_faults`] reusing a caller-owned [`ExecSlab`]
    /// and skipping schedule validation (same caller contract as
    /// [`Testbed::execute_prevalidated_with_slab`]).
    pub fn execute_with_faults_prevalidated_with_slab(
        &self,
        slab: &mut ExecSlab,
        dag: &Dag,
        schedule: &Schedule,
        run_seed: u64,
        plan: &FaultPlan,
        policy: &ExecPolicy,
    ) -> Result<ExecutionResult, ExecError> {
        let inner = TestbedRun::new(&self.truth, self.rng_for(0xE0EC, run_seed));
        let mut model = FaultyExecution::new(inner, ScriptedFaults::new(plan.clone()));
        execute_with_slab_prevalidated(slab, dag, &self.cluster, schedule, &mut model, policy)
    }

    /// [`Testbed::execute`] under timed platform disturbances: hosts
    /// crash, slow down, and links degrade mid-run as `setup.plan`
    /// scripts, and crashes trigger `setup.recovery` (see
    /// [`DisturbSetup`]). When `faults` is given, launch-failure /
    /// straggler injection composes with the disturbances — the same
    /// stacking the fault-injection path uses. Skips schedule validation
    /// (same caller contract as
    /// [`Testbed::execute_prevalidated_with_slab`]). Deterministic in
    /// `(self.base_seed, run_seed, plans)`; `report` accrues fired and
    /// recovery counters even when the run fails typed.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_disturbed_prevalidated_with_slab(
        &self,
        slab: &mut ExecSlab,
        dag: &Dag,
        schedule: &Schedule,
        run_seed: u64,
        faults: Option<&FaultPlan>,
        policy: &ExecPolicy,
        setup: DisturbSetup<'_>,
        report: &mut DisturbReport,
    ) -> Result<ExecutionResult, ExecError> {
        let inner = TestbedRun::new(&self.truth, self.rng_for(0xE0EC, run_seed));
        match faults {
            Some(plan) => {
                let mut model = FaultyExecution::new(inner, ScriptedFaults::new(plan.clone()));
                execute_disturbed_with_slab_prevalidated(
                    slab,
                    dag,
                    &self.cluster,
                    schedule,
                    &mut model,
                    policy,
                    setup,
                    report,
                )
            }
            None => {
                let mut model = inner;
                execute_disturbed_with_slab_prevalidated(
                    slab,
                    dag,
                    &self.cluster,
                    schedule,
                    &mut model,
                    policy,
                    setup,
                    report,
                )
            }
        }
    }

    /// One timed run of a single kernel at allocation `p` (the §VI
    /// brute-force profiling primitive). Includes startup overhead, as a
    /// stopwatch around a TGrid task launch would.
    pub fn time_task_once(&self, kernel: Kernel, p: usize, trial: u64) -> f64 {
        let mut rng = self.rng_for(0x5A5C ^ kernel.n() as u64 ^ ((p as u64) << 40), trial);
        let noise = LogNormal::new(0.0, TASK_NOISE_SIGMA).expect("valid sigma");
        self.truth.task_time_mean(kernel, p) * noise.sample(&mut rng)
    }

    /// One no-op task launch measurement (Figure 3's primitive).
    pub fn time_startup_once(&self, p: usize, trial: u64) -> f64 {
        let mut rng = self.rng_for(0x57A7 ^ ((p as u64) << 32), trial);
        let noise = LogNormal::new(0.0, STARTUP_NOISE_SIGMA).expect("valid sigma");
        self.truth.startup_mean(p) * noise.sample(&mut rng)
    }

    /// One empty-matrix redistribution measurement (Figure 4's primitive).
    pub fn time_redistribution_once(&self, p_src: usize, p_dst: usize, trial: u64) -> f64 {
        let mut rng = self.rng_for(
            0x4ED1 ^ ((p_src as u64) << 32) ^ ((p_dst as u64) << 16),
            trial,
        );
        let noise = LogNormal::new(0.0, REDIST_NOISE_SIGMA).expect("valid sigma");
        self.truth.redist_mean(p_src, p_dst) * noise.sample(&mut rng)
    }
}

/// The per-run execution model: ground truth + fresh noise.
///
/// The noise distributions are built once per run, not per sample — the
/// parameters are constants, and sampling depends only on the RNG state,
/// so the drawn values are unchanged.
struct TestbedRun<'a> {
    truth: &'a GroundTruth,
    rng: StdRng,
    task_noise: LogNormal,
    startup_noise: LogNormal,
    redist_noise: LogNormal,
}

impl<'a> TestbedRun<'a> {
    fn new(truth: &'a GroundTruth, rng: StdRng) -> Self {
        TestbedRun {
            truth,
            rng,
            task_noise: LogNormal::new(0.0, TASK_NOISE_SIGMA).expect("valid sigma"),
            startup_noise: LogNormal::new(0.0, STARTUP_NOISE_SIGMA).expect("valid sigma"),
            redist_noise: LogNormal::new(0.0, REDIST_NOISE_SIGMA).expect("valid sigma"),
        }
    }
}

impl ExecutionModel for TestbedRun<'_> {
    fn task_execution(&mut self, _task: TaskId, kernel: Kernel, hosts: &[HostId]) -> TaskExecution {
        let t =
            self.truth.task_time_mean(kernel, hosts.len()) * self.task_noise.sample(&mut self.rng);
        TaskExecution::Fixed(t)
    }

    fn startup_overhead(&mut self, _task: TaskId, p: usize) -> f64 {
        self.truth.startup_mean(p) * self.startup_noise.sample(&mut self.rng)
    }

    fn redist_overhead(&mut self, p_src: usize, p_dst: usize) -> f64 {
        self.truth.redist_mean(p_src, p_dst) * self.redist_noise.sample(&mut self.rng)
    }
}

/// The emulated Cray XT4 / PDGEMM environment of Figure 2 (right): a
/// well-tuned BLAS on a fast machine, so the analytic model errs by only
/// ≈ 10–20 % — but still errs.
#[derive(Debug, Clone, Copy)]
pub struct CrayPdgemmEnv {
    /// Measured machine rate (flops/s) — the paper's 4165.3 MFLOPS.
    pub flops_per_sec: f64,
    /// Seed of the deviation pattern.
    pub machine_seed: u64,
}

impl Default for CrayPdgemmEnv {
    fn default() -> Self {
        CrayPdgemmEnv {
            flops_per_sec: 4165.3e6,
            machine_seed: 0,
        }
    }
}

impl CrayPdgemmEnv {
    /// "Measured" PDGEMM execution time for an `n × n` multiplication on
    /// `p` cores: the analytic time times a structured deviation whose
    /// average magnitude oscillates around 10 % and peaks near 20 %.
    pub fn measured_time(&self, n: usize, p: usize) -> f64 {
        let analytic = 2.0 * (n as f64).powi(3) / (p as f64 * self.flops_per_sec);
        let dev = crate::ground_truth::hash_noise(&[self.machine_seed, 0xC4A1, n as u64, p as u64]);
        // Mean |dev| of a uniform [-1,1] is 0.5 → scale 0.2 gives ~10 %
        // average error, ~20 % max.
        analytic * (1.0 + 0.2 * dev)
    }

    /// The analytic prediction `2n³/p / rate`.
    pub fn analytic_time(&self, n: usize, p: usize) -> f64 {
        2.0 * (n as f64).powi(3) / (p as f64 * self.flops_per_sec)
    }
}

#[cfg(test)]
impl Testbed {
    /// Test-only alias (exercises `with_truth`).
    fn bayreyth_alias_for_test() -> Self {
        Testbed::with_truth(GroundTruth::bayreuth(), 2024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dag::gen::{paper_corpus, PAPER_CORPUS_SEED};
    use mps_model::{AnalyticModel, PerfModel};
    use mps_sched::{Hcpa, Scheduler};

    #[test]
    fn execution_is_reproducible_per_seed() {
        let tb = Testbed::bayreuth(42);
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let model = AnalyticModel::paper_jvm();
        let schedule = Hcpa.schedule(&g.dag, &tb.nominal_cluster(), &model);
        let a = tb.execute(&g.dag, &schedule, 1).unwrap();
        let b = tb.execute(&g.dag, &schedule, 1).unwrap();
        assert_eq!(a, b);
        let c = tb.execute(&g.dag, &schedule, 2).unwrap();
        assert_ne!(a.makespan, c.makespan);
        // Noise is small: runs agree within ~20 %.
        assert!((a.makespan - c.makespan).abs() / a.makespan < 0.2);
    }

    #[test]
    fn faulty_execution_is_reproducible_and_slower() {
        let tb = Testbed::bayreuth(42);
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let model = AnalyticModel::paper_jvm();
        let schedule = Hcpa.schedule(&g.dag, &tb.nominal_cluster(), &model);
        let healthy = tb.execute(&g.dag, &schedule, 1).unwrap();
        let plan = FaultPlan::builder(7)
            .node_crash(HostId(0), 0.0, healthy.makespan * 0.2)
            .node_slowdown(HostId(1), 0.0, 1.5)
            .build();
        let policy = ExecPolicy {
            max_retries: 8,
            ..ExecPolicy::default()
        };
        let a = tb
            .execute_with_faults(&g.dag, &schedule, 1, &plan, &policy)
            .unwrap();
        let b = tb
            .execute_with_faults(&g.dag, &schedule, 1, &plan, &policy)
            .unwrap();
        assert_eq!(a, b, "same seed + plan must be bit-identical");
        assert!(
            a.makespan > healthy.makespan,
            "faults should slow the run: {} vs {}",
            a.makespan,
            healthy.makespan
        );
        // An empty plan reproduces the healthy run exactly.
        let clean = tb
            .execute_with_faults(&g.dag, &schedule, 1, &FaultPlan::none(), &policy)
            .unwrap();
        assert_eq!(clean, healthy);
    }

    #[test]
    fn unsurvivable_fault_plan_yields_a_typed_error() {
        let tb = Testbed::bayreuth(42);
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let model = AnalyticModel::paper_jvm();
        let schedule = Hcpa.schedule(&g.dag, &tb.nominal_cluster(), &model);
        let plan = FaultPlan::builder(7).task_failure(1.0).build();
        let policy = ExecPolicy {
            max_retries: 1,
            ..ExecPolicy::default()
        };
        let err = tb
            .execute_with_faults(&g.dag, &schedule, 1, &plan, &policy)
            .unwrap_err();
        assert!(
            matches!(err, ExecError::TaskFailed { attempts: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn disturbed_execution_rescues_deterministically() {
        use mps_faults::{DisturbancePlan, RecoveryPolicy};
        use mps_sched::ScheduledTask;

        let tb = Testbed::bayreuth(42);
        let g = &paper_corpus(PAPER_CORPUS_SEED)[0];
        let model = AnalyticModel::paper_jvm();
        let schedule = Hcpa.schedule(&g.dag, &tb.nominal_cluster(), &model);
        let healthy = tb.execute(&g.dag, &schedule, 1).unwrap();
        // Crash a host mid-run; the rescue re-plan serializes everything
        // unfinished onto the first survivor.
        let plan = DisturbancePlan::builder(3)
            .crash(HostId(0), healthy.makespan * 0.3)
            .build();
        let dag = &g.dag;
        let run = || {
            let mut slab = ExecSlab::new();
            let mut report = DisturbReport::default();
            let mut replan = |survivors: &[HostId]| {
                let h = survivors[0];
                Some(mps_sched::Schedule {
                    algorithm: "rescue".into(),
                    tasks: dag
                        .task_ids()
                        .map(|t| ScheduledTask {
                            task: t,
                            hosts: vec![h],
                            est_start: 0.0,
                            est_finish: 1.0,
                        })
                        .collect(),
                    est_makespan: 1.0,
                })
            };
            let r = tb.execute_disturbed_prevalidated_with_slab(
                &mut slab,
                dag,
                &schedule,
                1,
                None,
                &ExecPolicy::default(),
                DisturbSetup {
                    plan: &plan,
                    recovery: RecoveryPolicy::Rescue,
                    rescue_overhead: 0.5,
                    replan: Some(&mut replan),
                },
                &mut report,
            );
            (r.unwrap(), report)
        };
        let (a, report_a) = run();
        let (b, report_b) = run();
        assert_eq!(a, b, "disturbed runs must be bit-identical per seed");
        assert_eq!(report_a, report_b);
        assert_eq!(report_a.crashes, 1);
        assert_eq!(report_a.rescues, 1);
        assert!(report_a.rescued_tasks >= 1);
        assert!(
            a.makespan > healthy.makespan,
            "losing a host cannot be free: {} vs {}",
            a.makespan,
            healthy.makespan
        );
        // An empty plan through the disturbed entry point reproduces the
        // healthy execution exactly.
        let mut slab = ExecSlab::new();
        let mut report = DisturbReport::default();
        let clean = tb
            .execute_disturbed_prevalidated_with_slab(
                &mut slab,
                dag,
                &schedule,
                1,
                None,
                &ExecPolicy::default(),
                DisturbSetup {
                    plan: &DisturbancePlan::none(),
                    recovery: RecoveryPolicy::Rescue,
                    rescue_overhead: 0.5,
                    replan: None,
                },
                &mut report,
            )
            .unwrap();
        assert_eq!(clean, healthy);
        assert_eq!(report.fired(), 0);
    }

    #[test]
    fn testbed_makespan_exceeds_analytic_simulation() {
        // The central premise: the experiment is much slower than the
        // analytic simulator predicts (underestimated task times + missing
        // overheads).
        let tb = Testbed::bayreuth(42);
        let model = AnalyticModel::paper_jvm();
        let sim = mps_sim::Simulator::new(tb.nominal_cluster(), model);
        let mut ratios = Vec::new();
        for g in paper_corpus(PAPER_CORPUS_SEED).iter().take(6) {
            let out = sim.schedule_and_simulate(&g.dag, &Hcpa).unwrap();
            let real = tb.execute(&g.dag, &out.schedule, 7).unwrap();
            assert!(
                real.makespan > out.result.makespan,
                "{}: real {} vs sim {}",
                g.name(),
                real.makespan,
                out.result.makespan
            );
            ratios.push(real.makespan / out.result.makespan);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 1.3, "mean underestimation ratio {mean}: {ratios:?}");
    }

    #[test]
    fn measurement_primitives_are_reproducible_and_noisy() {
        let tb = Testbed::bayreuth(1);
        let k = Kernel::MatMul { n: 2000 };
        assert_eq!(tb.time_task_once(k, 4, 0), tb.time_task_once(k, 4, 0));
        assert_ne!(tb.time_task_once(k, 4, 0), tb.time_task_once(k, 4, 1));
        let mean = tb.ground_truth().task_time_mean(k, 4);
        for trial in 0..10 {
            let t = tb.time_task_once(k, 4, trial);
            assert!(
                (t / mean - 1.0).abs() < 0.25,
                "trial {trial}: {t} vs {mean}"
            );
        }
    }

    #[test]
    fn startup_measurements_average_to_the_curve() {
        let tb = Testbed::bayreuth(9);
        for p in [1usize, 8, 32] {
            let mean_meas: f64 = (0..40).map(|t| tb.time_startup_once(p, t)).sum::<f64>() / 40.0;
            let truth = tb.ground_truth().startup_mean(p);
            assert!(
                (mean_meas / truth - 1.0).abs() < 0.08,
                "p={p}: {mean_meas} vs {truth}"
            );
        }
    }

    #[test]
    fn redistribution_measurements_follow_p_dst() {
        let tb = Testbed::bayreuth(5);
        let avg = |p_src: usize, p_dst: usize| -> f64 {
            (0..10)
                .map(|t| tb.time_redistribution_once(p_src, p_dst, t))
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(8, 32) > avg(8, 2));
    }

    #[test]
    fn cray_env_matches_figure_2_error_band() {
        let env = CrayPdgemmEnv::default();
        let mut errors = Vec::new();
        for n in [1024usize, 2048, 4096] {
            for p in 1..=32usize {
                let pred = env.analytic_time(n, p);
                let meas = env.measured_time(n, p);
                errors.push(((pred - meas) / meas).abs());
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let max = errors.iter().copied().fold(0.0, f64::max);
        assert!(
            (0.05..=0.15).contains(&mean),
            "mean error {mean} should oscillate around 10 %"
        );
        assert!(max <= 0.27, "max error {max} should stay near 20 %");
    }

    #[test]
    fn derated_network_is_slower_than_nominal() {
        let tb = Testbed::bayreuth(0);
        let nominal = tb.nominal_cluster();
        let real = tb.cluster();
        let t_nominal = nominal.p2p_transfer_time(HostId(0), HostId(1), 32.0e6);
        let t_real = real.p2p_transfer_time(HostId(0), HostId(1), 32.0e6);
        assert!(t_real > 1.2 * t_nominal);
    }

    #[test]
    fn profile_model_built_from_truth_tracks_execution() {
        // A model that knows the exact means should track testbed makespans
        // closely (noise only) — the §VI result in miniature.
        let tb = Testbed::bayreyth_alias_for_test();
        let g = &paper_corpus(PAPER_CORPUS_SEED)[4];
        let truth = *tb.ground_truth();
        #[derive(Clone)]
        struct Oracle(GroundTruth);
        impl PerfModel for Oracle {
            fn name(&self) -> &'static str {
                "oracle"
            }
            fn task_time(&self, kernel: Kernel, p: usize) -> f64 {
                self.0.task_time_mean(kernel, p)
            }
            fn startup_overhead(&self, p: usize) -> f64 {
                self.0.startup_mean(p)
            }
            fn redist_overhead(&self, p_src: usize, p_dst: usize) -> f64 {
                self.0.redist_mean(p_src, p_dst)
            }
        }
        let sim = mps_sim::Simulator::new(tb.cluster().clone(), Oracle(truth));
        let out = sim.schedule_and_simulate(&g.dag, &Hcpa).unwrap();
        let real = tb.execute(&g.dag, &out.schedule, 3).unwrap();
        let rel = ((out.result.makespan - real.makespan) / real.makespan).abs();
        assert!(rel < 0.10, "oracle sim should be within 10 %: {rel}");
    }
}
