//! Functional (data-carrying) execution of scheduled DAGs.
//!
//! The timed executor (`mps-sim`) moves *time*; this module moves *data*:
//! it executes a scheduled mixed-parallel application with real matrices,
//! using the reference kernels and the real redistribution engine from
//! `mps-kernels` — the Rust analogue of actually running the application
//! under TGrid. Its purpose is end-to-end validation: if the schedule, the
//! per-allocation block distributions and the redistribution plans are
//! consistent, the distributed computation must produce exactly the same
//! numbers as a sequential evaluation of the DAG.
//!
//! Operand semantics (matching the paper's generator, §II-B): each task
//! consumes two matrices — its predecessors' outputs, padded with
//! deterministic external input matrices when it has fewer than two
//! predecessors — and produces one output. Additions are *not* repeated
//! here (repetition only scales time, not values).

use mps_dag::{Dag, TaskId};
use mps_kernels::{
    execute_redistribution, matadd_seq, matmul_seq, parallel_matadd, parallel_matmul, BlockDist1D,
    Distributed, Kernel, Matrix,
};
use mps_sched::Schedule;

/// Squashes exact-integer-valued entries back into `[-15, 15]` after each
/// task. Both evaluation paths apply it identically, so results stay equal
/// — and, crucially, every intermediate value remains an exact small
/// integer in `f64`, making the comparison independent of accumulation
/// order (a chain of unnormalized multiplications would overflow the 2⁵³
/// exact-integer range and diverge between orders).
fn squash(m: &Matrix) -> Matrix {
    Matrix::from_fn(m.n(), |i, j| m.get(i, j).rem_euclid(31.0) - 15.0)
}

/// Deterministic external input matrix for `(task, slot)`.
fn input_matrix(n: usize, task: TaskId, slot: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(task.index() as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(slot as u64)
        | 1;
    Matrix::from_fn(n, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Small integers keep float rounding identical between the
        // sequential and distributed evaluation orders.
        ((state >> 58) as f64) - 16.0
    })
}

/// The two operand matrices of a task: predecessor outputs first (in task
/// id order), padded with external inputs.
fn operands(
    dag: &Dag,
    t: TaskId,
    outputs: &[Option<Matrix>],
    n: usize,
    seed: u64,
) -> (Matrix, Matrix) {
    let mut preds: Vec<TaskId> = dag.predecessors(t).to_vec();
    preds.sort();
    let mut ops: Vec<Matrix> = preds
        .iter()
        .map(|p| outputs[p.index()].clone().expect("topological order"))
        .collect();
    let mut slot = 0;
    while ops.len() < 2 {
        ops.push(input_matrix(n, t, slot, seed));
        slot += 1;
    }
    // More than two predecessors can occur for generated DAGs where a task
    // drew both operands from distinct producers and extra edges were
    // deduplicated; fold the extras in by addition so every predecessor's
    // data is observed.
    let mut b = ops.pop().expect("two operands");
    let a = ops.pop().expect("two operands");
    for extra in ops {
        b = matadd_seq(&b, &extra);
    }
    (a, b)
}

/// Sequential reference evaluation of the whole DAG.
///
/// Returns each task's output matrix. `n` must match the DAG's kernels.
pub fn evaluate_sequential(dag: &Dag, n: usize, seed: u64) -> Vec<Matrix> {
    let order = dag.topological_order().expect("valid DAG");
    let mut outputs: Vec<Option<Matrix>> = vec![None; dag.len()];
    for t in order {
        let (a, b) = operands(dag, t, &outputs, n, seed);
        let out = match dag.task(t).kernel {
            Kernel::MatMul { .. } => matmul_seq(&a, &b),
            Kernel::MatAdd { .. } => matadd_seq(&a, &b),
        };
        outputs[t.index()] = Some(squash(&out));
    }
    outputs.into_iter().map(|o| o.expect("computed")).collect()
}

/// Distributed evaluation following a schedule: every task runs with the
/// 1-D block distribution of its scheduled allocation, consuming its
/// predecessors' outputs through the real redistribution engine.
///
/// Returns each task's output matrix (gathered). The schedule must be
/// valid for the DAG; allocations larger than `n` columns are clamped so
/// every rank owns at least one column.
pub fn evaluate_distributed(dag: &Dag, schedule: &Schedule, n: usize, seed: u64) -> Vec<Matrix> {
    let order = dag.topological_order().expect("valid DAG");
    let mut outputs: Vec<Option<Matrix>> = vec![None; dag.len()];
    // Keep each producer's *distributed* output so consumers redistribute
    // from the producer's layout, exactly as TGrid would.
    let mut distributed: Vec<Option<Distributed>> = vec![None; dag.len()];

    for t in order {
        let p_sched = schedule.placement(t).expect("schedule covers the DAG").p();
        let p = p_sched.min(n).max(1);
        let dist = BlockDist1D::vanilla(n, p);

        let (a, b) = operands(dag, t, &outputs, n, seed);

        // Scatter operand A directly (external inputs are born in the
        // task's layout); operand B arrives from its producer's layout via
        // a real redistribution when it is a predecessor's output.
        let a_dist = Distributed::scatter(&a, dist);
        let mut preds: Vec<TaskId> = dag.predecessors(t).to_vec();
        preds.sort();
        let b_dist = match preds.last() {
            Some(&last_pred) if preds.len() >= 2 || dag.predecessors(t).len() >= 2 => {
                // B is the last predecessor's output (possibly folded with
                // extras — those were folded in gathered form already).
                let src = distributed[last_pred.index()]
                    .as_ref()
                    .expect("producer ran");
                if dag.predecessors(t).len() > 2 {
                    // Folding happened in gathered space; re-scatter.
                    Distributed::scatter(&b, dist)
                } else {
                    let (redistributed, _) = execute_redistribution(src, dist);
                    redistributed
                }
            }
            Some(&only_pred) => {
                // Single predecessor: its output is operand A by ordering;
                // B is external. Redistribute A from the producer layout to
                // prove the path, then use it.
                let src = distributed[only_pred.index()].as_ref().expect("ran");
                let (redistributed, _) = execute_redistribution(src, dist);
                // a_dist was scattered from the gathered copy; the
                // redistributed version must agree.
                debug_assert_eq!(
                    redistributed.gather().max_abs_diff(&a),
                    0.0,
                    "redistribution must preserve the producer's output"
                );
                Distributed::scatter(&b, dist)
            }
            None => Distributed::scatter(&b, dist),
        };

        let out_dist = match dag.task(t).kernel {
            Kernel::MatMul { .. } => parallel_matmul(&a_dist, &b_dist).0,
            Kernel::MatAdd { .. } => parallel_matadd(&a_dist, &b_dist, 1),
        };
        let gathered = squash(&out_dist.gather());
        distributed[t.index()] = Some(Distributed::scatter(&gathered, dist));
        outputs[t.index()] = Some(gathered);
    }
    outputs.into_iter().map(|o| o.expect("computed")).collect()
}

/// Runs both evaluations and returns the largest absolute element
/// difference over all task outputs — zero when the scheduling and
/// redistribution machinery is numerically faithful.
pub fn validate_schedule_semantics(dag: &Dag, schedule: &Schedule, n: usize, seed: u64) -> f64 {
    let seq = evaluate_sequential(dag, n, seed);
    let dist = evaluate_distributed(dag, schedule, n, seed);
    seq.iter()
        .zip(&dist)
        .map(|(a, b)| a.max_abs_diff(b))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dag::gen::{generate, DagGenParams};
    use mps_model::AnalyticModel;
    use mps_platform::Cluster;
    use mps_sched::{Hcpa, Mcpa, Scheduler};

    fn small_dag(seed: u64) -> Dag {
        // The generator works at any matrix size; use a tiny n for real
        // computation. Kernel n only affects cost models, not the
        // functional path, so we evaluate with n = 24 regardless.
        let params = DagGenParams {
            tasks: 8,
            input_matrices: 4,
            add_ratio: 0.5,
            matrix_size: 2000,
        };
        generate(&params, seed)
    }

    #[test]
    fn sequential_evaluation_is_deterministic() {
        let dag = small_dag(1);
        let a = evaluate_sequential(&dag, 16, 7);
        let b = evaluate_sequential(&dag, 16, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.max_abs_diff(y), 0.0);
        }
        let c = evaluate_sequential(&dag, 16, 8);
        assert!(a[0].max_abs_diff(&c[0]) > 0.0, "seed changes inputs");
    }

    #[test]
    fn distributed_execution_matches_sequential_under_hcpa() {
        let cluster = Cluster::bayreuth();
        let model = AnalyticModel::paper_jvm();
        for seed in 0..6 {
            let dag = small_dag(seed);
            let schedule = Hcpa.schedule(&dag, &cluster, &model);
            let diff = validate_schedule_semantics(&dag, &schedule, 24, seed);
            assert_eq!(diff, 0.0, "seed {seed}: max diff {diff}");
        }
    }

    #[test]
    fn distributed_execution_matches_sequential_under_mcpa() {
        let cluster = Cluster::bayreuth();
        let model = AnalyticModel::paper_jvm();
        for seed in 0..4 {
            let dag = small_dag(seed + 100);
            let schedule = Mcpa.schedule(&dag, &cluster, &model);
            let diff = validate_schedule_semantics(&dag, &schedule, 24, seed);
            assert_eq!(diff, 0.0, "seed {seed}");
        }
    }

    #[test]
    fn allocations_larger_than_matrix_are_clamped() {
        // n = 8 columns but 32-host allocations: every rank must still own
        // ≥ 1 column.
        let cluster = Cluster::bayreuth();
        let model = AnalyticModel::paper_jvm();
        let dag = small_dag(3);
        let schedule = Hcpa.schedule(&dag, &cluster, &model);
        let diff = validate_schedule_semantics(&dag, &schedule, 8, 3);
        assert_eq!(diff, 0.0);
    }

    #[test]
    fn chain_dag_functional_roundtrip() {
        use mps_dag::shapes::chain;
        let dag = chain(Kernel::MatMul { n: 2000 }, 4);
        let cluster = Cluster::bayreuth();
        let schedule = Hcpa.schedule(&dag, &cluster, &AnalyticModel::paper_jvm());
        let diff = validate_schedule_semantics(&dag, &schedule, 20, 11);
        assert_eq!(diff, 0.0);
    }
}
