//! The hidden ground-truth performance model of the emulated cluster.
//!
//! This module is the substitute for the paper's physical 32-node cluster
//! running TGrid/MPIJava (see DESIGN.md §2). It defines what task
//! executions, task startups, and data redistributions *really* cost on the
//! emulated machine. Simulators never read these curves directly — they
//! only observe them through the measurement APIs in
//! [`measure`](crate::measure), exactly as the paper's authors had to.
//!
//! The curves are **calibrated to the paper's published Table II empirical
//! models**, with the perturbations §V-C/§VII identify layered on top:
//!
//! * a deterministic per-`(kernel, p)` *wiggle* (JVM/cache effects, ±12 %);
//! * *outlier* multipliers at `p = 8` (slow local updates — memory
//!   hierarchy) and `p = 16` for `n = 3000` (vanilla-1D load imbalance,
//!   computed from the actual remainder distribution, plus a memory
//!   effect);
//! * a non-monotonic startup-overhead curve around `0.65 + 0.03·p` seconds
//!   (Figure 3);
//! * a redistribution protocol overhead dominated by `p_dst` with weak
//!   `p_src` and interaction terms (Figure 4);
//! * TCP efficiency < line rate on the network (`network_efficiency`),
//!   making real redistributions slower than the analytic model expects.
//!
//! Because the analytic model (250 MFlop/s flop counting) underestimates
//! these curves by ≈ 2–3×, the three root causes of §V-C are all present.

use mps_kernels::{BlockDist1D, Kernel};

/// Deterministic hash → uniform value in `[-1, 1]`.
///
/// SplitMix64 finalizer — stable across platforms, no RNG state.
pub fn hash_noise(parts: &[u64]) -> f64 {
    let mut z = 0x9E37_79B9_7F4A_7C15_u64;
    for &p in parts {
        z = z.wrapping_add(p).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
    }
    z = (z ^ (z >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map the top 53 bits to [0, 1), then to [-1, 1].
    ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// The hidden truth for the emulated Bayreuth cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// Identity seed: different values give a different (but equally
    /// plausible) machine. The paper's machine is seed 0.
    pub machine_seed: u64,
    /// Relative amplitude of the deterministic execution-time wiggle.
    pub wiggle_amplitude: f64,
    /// Fraction of nominal link bandwidth actually achieved (TCP efficiency).
    pub network_efficiency: f64,
    /// Scale on the startup-overhead curve (1.0 = the paper's machine,
    /// 0.0 = a hypothetical environment with free task launches).
    /// Ablation knob for §V-C root cause (b).
    pub startup_scale: f64,
    /// Scale on the redistribution protocol overhead (§V-C root cause (c)).
    pub redist_scale: f64,
    /// When true, task times follow the *analytic* flop-count model
    /// exactly (no JVM inefficiency, wiggle or outliers) — ablation knob
    /// for §V-C root cause (a).
    pub analytic_tasks: bool,
}

impl Default for GroundTruth {
    fn default() -> Self {
        GroundTruth {
            machine_seed: 0,
            wiggle_amplitude: 0.12,
            network_efficiency: 0.75,
            startup_scale: 1.0,
            redist_scale: 1.0,
            analytic_tasks: false,
        }
    }
}

impl GroundTruth {
    /// The calibrated emulation of the paper's cluster.
    pub fn bayreuth() -> Self {
        Self::default()
    }

    /// Base execution-time curve (seconds) — the Table II shapes.
    fn base_task_time(kernel: Kernel, p: usize) -> f64 {
        let pf = p as f64;
        match kernel {
            Kernel::MatMul { n: 2000 } => {
                // Regime change at p ≈ 14: the Table II low-regime fit
                // overshoots at its range edge (its own high-regime model
                // gives ≈ 3.1 s at p = 15), so the coherent machine curve
                // switches to the linear regime before the paper's sample
                // point p = 15.
                if p <= 14 {
                    239.44 / (2.0 * pf) + 3.43
                } else {
                    0.08 * pf + 1.93
                }
            }
            Kernel::MatMul { n: 3000 } => {
                if p <= 16 {
                    (537.91 / pf - 25.55).max(6.0)
                } else {
                    (-0.09 * pf + 11.47).max(6.0)
                }
            }
            Kernel::MatAdd { n: 2000 } => 22.99 / pf + 0.03,
            Kernel::MatAdd { n: 3000 } => 73.59 / pf + 0.38,
            // Sizes outside the paper grid: scale the JVM-inefficiency
            // regime from the analytic cost (≈ 1.9× slower than the
            // 250 MFlop/s nominal rate, plus a fixed overhead).
            k => 1.9 * k.flops_per_proc(p) / 250.0e6 + 0.02 * pf,
        }
    }

    /// Deterministic wiggle factor for `(kernel, p)` — the unpredictable
    /// JVM/cache sensitivity of §V-C a.
    pub fn wiggle(&self, kernel: Kernel, p: usize) -> f64 {
        let tag = match kernel {
            Kernel::MatMul { n } => (1u64 << 32) | n as u64,
            Kernel::MatAdd { n } => (2u64 << 32) | n as u64,
        };
        1.0 + self.wiggle_amplitude * hash_noise(&[self.machine_seed, tag, p as u64])
    }

    /// Outlier multiplier (≥ 1): the `p = 8` memory-hierarchy effect and
    /// the `p = 16` vanilla-1D imbalance of §VII-A.
    pub fn outlier_factor(&self, kernel: Kernel, p: usize) -> f64 {
        let n = kernel.n();
        let mut factor = 1.0;
        if let Kernel::MatMul { .. } = kernel {
            if p == 8 {
                // "the computation of the local matrix updates ... simply
                // slower"; stronger for the larger working set.
                factor *= if n >= 3000 { 1.35 } else { 1.12 };
            }
            if p == 16 && n == 3000 {
                // Load imbalance from the vanilla distribution (real, from
                // the block math) amplified by a strong memory effect — the
                // paper's Fig. 6 shows this point far above the curve, and
                // §VII-B traces its largest empirical-simulation errors to
                // schedules that allocate p = 16.
                let imbalance = BlockDist1D::vanilla(n, p).imbalance_factor();
                factor *= imbalance * 2.1;
            }
        }
        factor
    }

    /// Mean task execution time (seconds) — deterministic, before run
    /// noise.
    pub fn task_time_mean(&self, kernel: Kernel, p: usize) -> f64 {
        assert!(p >= 1, "allocation must be at least one processor");
        if self.analytic_tasks {
            // Ablation: the machine magically matches the analytic L07
            // world — an isolated task's duration is the max of its compute
            // time and its ring-communication time on the nominal Gigabit
            // star (each private-link direction carries one ring edge, the
            // backbone carries all p of them), plus the route latency.
            let compute = kernel.flops_per_proc(p) / 250.0e6;
            if p == 1 {
                return compute;
            }
            let edge_bytes = kernel.total_comm_bytes(p) / p as f64;
            let link_bw = 125.0e6;
            let link_time = edge_bytes / link_bw;
            let backbone_time = p as f64 * edge_bytes / link_bw;
            return compute.max(link_time).max(backbone_time) + 3.0e-4;
        }
        Self::base_task_time(kernel, p) * self.wiggle(kernel, p) * self.outlier_factor(kernel, p)
    }

    /// Mean task startup overhead (seconds): the JVM-over-SSH launch curve
    /// of Figure 3 — increasing on average but *not monotonic*.
    pub fn startup_mean(&self, p: usize) -> f64 {
        assert!(p >= 1);
        let pf = p as f64;
        let wiggle = 0.12 * hash_noise(&[self.machine_seed, 0xBEEF, p as u64]);
        self.startup_scale * (0.65 + 0.03 * pf + wiggle).max(0.05)
    }

    /// Mean redistribution protocol overhead (seconds) between a
    /// `p_src`-processor producer and a `p_dst`-processor consumer: the
    /// subnet-manager registration cost of Figure 4, dominated by `p_dst`.
    pub fn redist_mean(&self, p_src: usize, p_dst: usize) -> f64 {
        assert!(p_src >= 1 && p_dst >= 1);
        let s = p_src as f64;
        let d = p_dst as f64;
        let wiggle = 0.006 * hash_noise(&[self.machine_seed, 0xD157, p_src as u64, p_dst as u64]);
        self.redist_scale
            * (0.108_58 + 0.007_88 * d + 0.000_8 * s + 0.000_06 * s * d + wiggle).max(0.005)
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn analytic_tasks_flag_matches_flop_model() {
        let gt = GroundTruth {
            analytic_tasks: true,
            ..GroundTruth::default()
        };
        let k = Kernel::MatMul { n: 2000 };
        // Serial: pure flop time, no communication.
        assert!((gt.task_time_mean(k, 1) - 64.0).abs() < 1e-9);
        // p = 4: compute 16 s dominates the ring traffic
        // (backbone: 4 edges × 24 MB = 96 MB → 0.77 s).
        assert!((gt.task_time_mean(k, 4) - (16.0 + 3.0e-4)).abs() < 1e-9);
        // p = 32: backbone-bound — 32 edges × (31/32)·n²·8/32 B each.
        let edge = 31.0 * (2000.0_f64 * 2000.0 / 32.0) * 8.0;
        let expect = (32.0 * edge / 125.0e6) + 3.0e-4;
        assert!((gt.task_time_mean(k, 32) - expect).abs() < 1e-6);
    }

    #[test]
    fn startup_scale_zero_disables_the_overhead() {
        let gt = GroundTruth {
            startup_scale: 0.0,
            ..GroundTruth::default()
        };
        assert_eq!(gt.startup_mean(16), 0.0);
    }

    #[test]
    fn redist_scale_halves_the_overhead() {
        let base = GroundTruth::default();
        let half = GroundTruth {
            redist_scale: 0.5,
            ..GroundTruth::default()
        };
        assert!((half.redist_mean(8, 16) - base.redist_mean(8, 16) / 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_noise_is_deterministic_and_bounded() {
        for i in 0..1000u64 {
            let a = hash_noise(&[i, 7]);
            let b = hash_noise(&[i, 7]);
            assert_eq!(a, b);
            assert!((-1.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn hash_noise_varies_with_inputs() {
        let vals: Vec<f64> = (0..100).map(|i| hash_noise(&[i, 3])).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.2, "roughly centred, mean = {mean}");
        let distinct = vals
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 1e-12)
            .count();
        assert!(distinct > 90);
    }

    #[test]
    fn truth_is_slower_than_analytic_model() {
        // §V-C: "simulated execution times are often grossly
        // underestimated". The Table II-calibrated truth sits well above
        // the flop-count prediction through the hyperbolic regime; in the
        // n = 3000 linear regime the published fit dips close to (or
        // slightly below) the analytic line — which is fine: Fig. 2 shows
        // the analytic error *fluctuating*, not uniformly signed.
        let gt = GroundTruth::bayreuth();
        for n in [2000usize, 3000] {
            let k = Kernel::MatMul { n };
            for p in [1usize, 2, 4, 8] {
                let analytic = k.flops_per_proc(p) / 250.0e6;
                let truth = gt.task_time_mean(k, p);
                assert!(
                    truth > 1.2 * analytic,
                    "n={n} p={p}: truth {truth} vs analytic {analytic}"
                );
            }
            // Mean ratio across all allocations stays clearly above 1.
            let mean_ratio: f64 = (1..=32)
                .map(|p| gt.task_time_mean(k, p) / (k.flops_per_proc(p) / 250.0e6))
                .sum::<f64>()
                / 32.0;
            // n = 2000 is grossly underestimated everywhere; n = 3000's
            // published curve tracks the analytic line more closely at
            // mid-range p (which is why the paper's analytic simulator is
            // wrong on 60 % of n = 2000 DAGs but only 26 % of n = 3000).
            let floor = if n == 2000 { 1.3 } else { 1.15 };
            assert!(mean_ratio > floor, "n={n}: mean ratio {mean_ratio}");
        }
    }

    #[test]
    fn outliers_are_planted_where_the_paper_found_them() {
        let gt = GroundTruth::bayreuth();
        let k = Kernel::MatMul { n: 3000 };
        assert!(gt.outlier_factor(k, 8) > 1.3);
        assert!(gt.outlier_factor(k, 16) > 1.25);
        assert_eq!(gt.outlier_factor(k, 7), 1.0);
        assert_eq!(gt.outlier_factor(k, 15), 1.0);
        // Additions have no planted outliers.
        assert_eq!(gt.outlier_factor(Kernel::MatAdd { n: 3000 }, 8), 1.0);
    }

    #[test]
    fn startup_curve_is_in_figure_3_range_and_non_monotonic() {
        let gt = GroundTruth::bayreuth();
        let curve: Vec<f64> = (1..=32).map(|p| gt.startup_mean(p)).collect();
        for &v in &curve {
            assert!((0.4..=1.9).contains(&v), "startup {v}");
        }
        // Non-monotonic: at least one decrease.
        assert!(
            curve.windows(2).any(|w| w[1] < w[0]),
            "curve should wiggle: {curve:?}"
        );
        // But increasing overall.
        assert!(curve[31] > curve[0]);
    }

    #[test]
    fn redistribution_overhead_is_dominated_by_p_dst() {
        let gt = GroundTruth::bayreuth();
        // Varying p_dst changes the overhead much more than varying p_src.
        let d_range = gt.redist_mean(16, 32) - gt.redist_mean(16, 1);
        let s_range = gt.redist_mean(32, 16) - gt.redist_mean(1, 16);
        assert!(d_range > 2.0 * s_range, "d {d_range} vs s {s_range}");
        assert!(gt.redist_mean(1, 1) > 0.0);
    }

    #[test]
    fn task_times_are_positive_and_finite_everywhere() {
        let gt = GroundTruth::bayreuth();
        for n in [500usize, 2000, 3000] {
            for p in 1..=32usize {
                for k in [Kernel::MatMul { n }, Kernel::MatAdd { n }] {
                    let t = gt.task_time_mean(k, p);
                    assert!(t.is_finite() && t > 0.0, "{k} p={p} -> {t}");
                }
            }
        }
    }

    #[test]
    fn different_machine_seeds_differ() {
        let a = GroundTruth {
            machine_seed: 0,
            ..GroundTruth::default()
        };
        let b = GroundTruth {
            machine_seed: 1,
            ..GroundTruth::default()
        };
        let k = Kernel::MatMul { n: 2000 };
        let diffs = (1..=32)
            .filter(|&p| (a.task_time_mean(k, p) - b.task_time_mean(k, p)).abs() > 1e-9)
            .count();
        assert!(diffs > 20);
    }

    #[test]
    fn n3000_p16_includes_real_imbalance() {
        // The imbalance component is the actual block-distribution ratio.
        let imb = BlockDist1D::vanilla(3000, 16).imbalance_factor();
        assert!(imb > 1.03 && imb < 1.05);
        let gt = GroundTruth::bayreuth();
        let f = gt.outlier_factor(Kernel::MatMul { n: 3000 }, 16);
        assert!((f - imb * 2.1).abs() < 1e-12);
    }
}
