//! # mps-testbed — the emulated execution environment
//!
//! The stand-in for the paper's physical cluster (see DESIGN.md §2): a
//! high-fidelity emulation of the 32-node Bayreuth cluster running
//! TGrid/MPIJava, with **hidden** ground-truth performance behaviour —
//! JVM-inefficient task times calibrated to the paper's Table II curves,
//! planted outliers at `p = 8/16`, a non-monotonic startup-overhead curve,
//! a `p_dst`-dominated redistribution protocol overhead, TCP-derated
//! network bandwidth, and seeded run-to-run noise.
//!
//! Simulators interact with the testbed the way the paper's authors
//! interacted with their cluster:
//!
//! * [`Testbed::execute`] — run a schedule and measure its makespan ("the
//!   experiment");
//! * [`measure`] — the profiling/benchmarking APIs used to *instantiate*
//!   the refined simulation models (§VI brute-force profiles, §VII sparse
//!   regression samples).
//!
//! ```
//! use mps_testbed::{measure, Testbed};
//! use mps_kernels::Kernel;
//!
//! let tb = Testbed::bayreuth(42);
//! // Brute-force profile one kernel (3 trials, as a quick check):
//! let cfg = measure::ProfilingConfig { task_trials: 3, ..Default::default() };
//! let profiles = measure::profile_tasks(&tb, &[Kernel::MatMul { n: 2000 }], &cfg);
//! assert_eq!(profiles[0].1.len(), 32); // p = 1..=32
//! ```

#![warn(missing_docs)]

pub mod functional;
pub mod ground_truth;
pub mod measure;
#[allow(clippy::module_inception)]
pub mod testbed;

pub use functional::{evaluate_distributed, evaluate_sequential, validate_schedule_semantics};
pub use ground_truth::{hash_noise, GroundTruth};
pub use measure::{
    build_profile_model, fit_empirical_model, measure_redist_surface, measure_startup_curve,
    paper_kernels, profile_tasks, redist_by_dst, ProfilingConfig,
};
pub use testbed::{
    CrayPdgemmEnv, Testbed, REDIST_NOISE_SIGMA, STARTUP_NOISE_SIGMA, TASK_NOISE_SIGMA,
};
