//! The streaming scheduling engine: a seeded arrival process feeding
//! moldable CPA-family allocation over the incremental DES, sustained
//! over million-event horizons with bounded memory.
//!
//! # Execution model
//!
//! One DES resource per cluster host (capacity 1.0). A job — a DAG drawn
//! from the shared corpus — claims an *exclusive* subset of free hosts
//! (moldable: `min(free, max_width)` lowest-indexed hosts), runs its
//! precomputed plan as a single activity spanning the claimed resources
//! (weight 1.0 each, amount = plan makespan, so the solo-rate fast path
//! yields `duration == makespan` with no solver involvement), and returns
//! the hosts at completion. Per-task completion ticks are modelled as
//! timers at each task's plan-relative finish time, so the event stream
//! carries task-level granularity at timer-path cost.
//!
//! # The allocation-free argument
//!
//! Steady state performs no unbounded work per event:
//!
//! * **Plans are memoized** per `(dag, width)` for the run's algorithm —
//!   at most `|corpus| × hosts` entries (54 × 32 here). Cache hits make
//!   dispatch O(width); misses run the real CPA/HCPA/MCPA pipeline on a
//!   warm [`AllocationEngine`] whose τ-table is keyed per DAG, so even
//!   misses at new widths reuse every model evaluation.
//! * **Job state lives in a slab** (`Vec` + free-list) whose slots retain
//!   their host-`Vec` capacity across reuse; the activity→job map is a
//!   `HashMap` bounded by inflight jobs, inserted and removed in pairs.
//! * **The DES hot path** ([`Engine::step_into`]) is allocation-free
//!   warm, and the dominant event class (timers) never touches the
//!   sharing solver.
//! * **Metrics are fixed-size**: latency goes through the P² sketch
//!   ([`QuantileSketch`], five markers per quantile), counters are
//!   scalars. Nothing grows with the horizon.
//!
//! # Determinism
//!
//! A run is a pure function of [`OnlineConfig`]: arrivals come from a
//! seeded splitmix64 stream, plans are deterministic, and the DES breaks
//! ties on monotone ids. The returned [`OnlineRun`] (and its FNV trace
//! digest folded over every event) is byte-identical across repeats,
//! batch sizes, and worker counts; wall-clock measurements are the
//! caller's business and never contaminate the deterministic report.

use std::collections::{HashMap, VecDeque};

use mps_dag::Dag;
use mps_des::{ActivitySpec, Completion, Engine, ResourceId};
use mps_model::AnalyticModel;
use mps_platform::{Cluster, ClusterSpec};
use mps_sched::{AllocKey, AllocationEngine, Cpa, Hcpa, Mcpa, Scheduler};
use mps_stats::QuantileSketch;
use serde::{Deserialize, Serialize};

use crate::admission::{Admission, AdmissionController};
use crate::arrival::{ArrivalProcess, ArrivalSpec};
use crate::OnlineError;

/// Which allocator drives job planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnlineAlgo {
    /// Radulescu & van Gemund's CPA.
    Cpa,
    /// Heterogeneous CPA.
    Hcpa,
    /// Modified CPA.
    Mcpa,
}

impl OnlineAlgo {
    /// Canonical name (matches the scheduler's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            OnlineAlgo::Cpa => "CPA",
            OnlineAlgo::Hcpa => "HCPA",
            OnlineAlgo::Mcpa => "MCPA",
        }
    }

    /// Parses a case-insensitive algorithm name.
    pub fn parse(s: &str) -> Result<Self, OnlineError> {
        match s.trim().to_ascii_uppercase().as_str() {
            "CPA" => Ok(OnlineAlgo::Cpa),
            "HCPA" => Ok(OnlineAlgo::Hcpa),
            "MCPA" => Ok(OnlineAlgo::Mcpa),
            other => Err(OnlineError::Config(format!(
                "unknown algorithm {other:?} (want CPA, HCPA, or MCPA)"
            ))),
        }
    }

    fn scheduler(self) -> &'static dyn Scheduler {
        match self {
            OnlineAlgo::Cpa => &Cpa,
            OnlineAlgo::Hcpa => &Hcpa,
            OnlineAlgo::Mcpa => &Mcpa,
        }
    }
}

/// Configuration for one streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// Arrival process.
    pub arrival: ArrivalSpec,
    /// Seed for the arrival stream (job times and corpus draws).
    pub seed: u64,
    /// Stop admitting arrivals once this many DES events have been
    /// processed; the run then drains to idle.
    pub horizon_events: u64,
    /// Admission cap on backlog + inflight jobs (0 sheds everything).
    pub admission_cap: usize,
    /// Widest host subset a job may claim (clamped to the cluster).
    pub max_width: usize,
    /// Steps between memory-footprint samples (flush granularity only —
    /// never affects the event trace). 0 means every step.
    pub batch: usize,
    /// Planning algorithm.
    pub algo: OnlineAlgo,
}

impl OnlineConfig {
    /// A config with the crate's defaults: 1M-event horizon, admission
    /// cap 64, full-width moldability, per-256-step sampling.
    pub fn new(arrival: ArrivalSpec, algo: OnlineAlgo) -> Self {
        OnlineConfig {
            arrival,
            seed: 0,
            horizon_events: 1_000_000,
            admission_cap: 64,
            max_width: usize::MAX,
            batch: 256,
            algo,
        }
    }
}

/// The deterministic outcome of a run. Every field is a pure function of
/// the [`OnlineConfig`]; the `Debug` rendering round-trips f64 bits, so
/// string equality of two reports is bit equality of two runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OnlineRun {
    /// Arrival spec, in grammar form.
    pub arrival: String,
    /// Algorithm name.
    pub algo: String,
    /// Seed the run used.
    pub seed: u64,
    /// Configured horizon.
    pub horizon_events: u64,
    /// DES events actually processed (≥ horizon unless the drain was short).
    pub events: u64,
    /// Jobs that arrived while the horizon was open.
    pub arrivals: u64,
    /// Jobs admitted past the controller.
    pub admitted: u64,
    /// Jobs shed with a retry hint.
    pub shed: u64,
    /// Retry hint attached to the last shed, simulated ms (0 if none).
    pub last_retry_hint_ms: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Simulated end time, seconds.
    pub sim_seconds: f64,
    /// Busy host-seconds ÷ (hosts × sim time): cluster utilization.
    pub utilization: f64,
    /// Job sojourn (admission → completion), simulated ms.
    pub latency_mean_ms: f64,
    /// Median sojourn.
    pub latency_p50_ms: f64,
    /// 99th-percentile sojourn (P² estimate).
    pub latency_p99_ms: f64,
    /// 99.9th-percentile sojourn (P² estimate).
    pub latency_p999_ms: f64,
    /// Deepest backlog observed.
    pub max_backlog: usize,
    /// Most jobs inflight at once.
    pub max_inflight: usize,
    /// FNV-1a digest folded over every event (kind, id, time bits) —
    /// two runs with equal digests executed the same event trace.
    pub trace_digest: u64,
}

/// Peak sizes of the growable structures, sampled every `batch` steps.
/// Reported *alongside* [`OnlineRun`], never inside it: the sampling
/// cadence is a flush knob, so these may legitimately differ between
/// batch sizes while the event trace stays identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OnlineHighWater {
    /// DES activity-slab slots.
    pub des_slab_slots: usize,
    /// DES timer-heap entries.
    pub des_timer_heap: usize,
    /// Largest of all DES structure high-waters.
    pub des_high_water: usize,
    /// Job-slab slots (inflight jobs).
    pub job_slots: usize,
    /// Plan-cache entries at the end of the run (monotone, exact).
    pub plan_cache_entries: usize,
}

/// A run's full result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OnlineOutcome {
    /// The deterministic report.
    pub run: OnlineRun,
    /// Memory high-water marks (cadence-dependent, see type docs).
    pub high_water: OnlineHighWater,
}

/// A memoized job plan for one `(dag, width)` under the run's algorithm.
#[derive(Debug, Clone)]
struct JobPlan {
    /// Estimated makespan on `width` dedicated hosts, seconds.
    makespan: f64,
    /// Σ over tasks of `(est_finish − est_start) × p`: busy host-seconds.
    busy_host_seconds: f64,
    /// Plan-relative task finish times, for per-task completion ticks.
    task_finishes: Vec<f64>,
}

/// One inflight job's state. Slots are reused via a free-list and keep
/// their `hosts` capacity across reuse.
#[derive(Debug, Default)]
struct JobSlot {
    live: bool,
    admit_time: f64,
    busy_host_seconds: f64,
    hosts: Vec<u32>,
}

/// A job admitted but not yet dispatched.
#[derive(Debug, Clone, Copy)]
struct Pending {
    dag: u32,
    admit_time: f64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The reusable streaming engine. Construction is cheap; the value of
/// keeping one alive across runs is the warm plan cache, τ-tables, and
/// grown buffers — all of which are bit-identical to a cold start.
pub struct OnlineEngine<'c> {
    corpus: &'c [Dag],
    model: AnalyticModel,
    cluster_nodes: usize,
    /// Sub-clusters by width, built lazily (`[m]` is an m-node platform).
    subclusters: Vec<Option<Cluster>>,
    alloc: AllocationEngine,
    /// Plan memo: (algo, dag index, width) → plan.
    plans: HashMap<(OnlineAlgo, u32, u32), JobPlan>,
    des: Engine,
    resources: Vec<ResourceId>,
    // --- per-run scratch, kept warm across runs ---
    completions: Vec<Completion>,
    jobs: Vec<JobSlot>,
    free_jobs: Vec<u32>,
    backlog: VecDeque<Pending>,
    host_free: Vec<bool>,
    act2job: HashMap<u64, u32>,
}

impl<'c> OnlineEngine<'c> {
    /// An engine over `corpus` on the paper's 32-node cluster.
    pub fn new(corpus: &'c [Dag]) -> Result<Self, OnlineError> {
        Self::with_cluster_spec(corpus, ClusterSpec::bayreuth())
    }

    /// An engine over `corpus` on an arbitrary cluster spec.
    pub fn with_cluster_spec(corpus: &'c [Dag], spec: ClusterSpec) -> Result<Self, OnlineError> {
        if corpus.is_empty() {
            return Err(OnlineError::Config("corpus is empty".into()));
        }
        let nodes = spec.nodes;
        if nodes == 0 {
            return Err(OnlineError::Config("cluster has no nodes".into()));
        }
        let mut subclusters: Vec<Option<Cluster>> = vec![None; nodes + 1];
        // Width-m jobs plan against an m-node copy of the platform.
        for (m, slot) in subclusters.iter_mut().enumerate().skip(1) {
            let mut sub = spec.clone();
            sub.nodes = m;
            *slot = Some(
                sub.build()
                    .map_err(|e| OnlineError::Config(format!("bad cluster spec: {e}")))?,
            );
        }
        let mut des = Engine::new();
        let resources = (0..nodes).map(|_| des.add_resource(1.0)).collect();
        Ok(OnlineEngine {
            corpus,
            model: AnalyticModel::paper_jvm(),
            cluster_nodes: nodes,
            subclusters,
            alloc: AllocationEngine::new(),
            plans: HashMap::new(),
            des,
            resources,
            completions: Vec::new(),
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            backlog: VecDeque::new(),
            host_free: vec![true; nodes],
            act2job: HashMap::new(),
        })
    }

    /// Number of hosts in the live cluster.
    pub fn hosts(&self) -> usize {
        self.cluster_nodes
    }

    /// Plans `(dag, width)` under `algo`, memoized. τ is keyed per DAG
    /// (it does not depend on the width), so even a cache miss at a new
    /// width reuses every model evaluation for that DAG.
    fn plan(&mut self, algo: OnlineAlgo, dag: u32, width: u32) -> &JobPlan {
        self.plans.entry((algo, dag, width)).or_insert_with(|| {
            let d = &self.corpus[dag as usize];
            let cluster = self.subclusters[width as usize]
                .as_ref()
                .expect("widths 1..=nodes are prebuilt");
            let key = AllocKey {
                dag: dag as u64,
                model: 0, // one model per engine
            };
            let schedule = algo.scheduler().schedule_with_keyed_engine(
                d,
                cluster,
                &self.model,
                &mut self.alloc,
                key,
            );
            let busy: f64 = schedule
                .tasks
                .iter()
                .map(|t| (t.est_finish - t.est_start) * t.p() as f64)
                .sum();
            let mut finishes: Vec<f64> = schedule.tasks.iter().map(|t| t.est_finish).collect();
            finishes.sort_by(f64::total_cmp);
            JobPlan {
                makespan: schedule.est_makespan.max(f64::MIN_POSITIVE),
                busy_host_seconds: busy,
                task_finishes: finishes,
            }
        })
    }

    /// Runs one streaming horizon. Deterministic: see the module docs.
    pub fn run(&mut self, cfg: &OnlineConfig) -> Result<OnlineOutcome, OnlineError> {
        if cfg.horizon_events == 0 {
            return Err(OnlineError::Config("horizon must be > 0 events".into()));
        }
        // Reset per-run state; capacity in every buffer survives.
        self.des.reset();
        self.completions.clear();
        self.jobs.clear();
        self.free_jobs.clear();
        self.backlog.clear();
        self.act2job.clear();
        for f in &mut self.host_free {
            *f = true;
        }
        let mut free_hosts = self.cluster_nodes;
        let max_width = cfg.max_width.clamp(1, self.cluster_nodes);
        let sample_every = cfg.batch.max(1) as u64;

        let mut arrivals = ArrivalProcess::new(cfg.arrival, cfg.seed);
        let mut admission = AdmissionController::new(cfg.admission_cap);
        let mut latency = QuantileSketch::new();
        let mut digest = FNV_OFFSET;
        digest = fnv(digest, cfg.seed);
        digest = fnv(digest, cfg.horizon_events);

        let mut events: u64 = 0;
        let mut steps: u64 = 0;
        let mut arrived: u64 = 0;
        let mut completed: u64 = 0;
        let mut last_hint: u64 = 0;
        let mut busy_committed = 0.0_f64;
        let mut max_backlog = 0usize;
        let mut max_inflight = 0usize;
        let mut hw = OnlineHighWater::default();

        // Arm the first arrival. The arrival timer is the only timer we
        // track by id — every other timer is a per-task completion tick.
        let mut arrival_timer = Some(
            self.des
                .schedule_timer(arrivals.next_delay())
                .map_err(OnlineError::Engine)?
                .raw(),
        );

        loop {
            let stepped = self
                .des
                .step_into(&mut self.completions)
                .map_err(OnlineError::Engine)?;
            let Some(now) = stepped else {
                // Engine idle. Anything still backlogged is dispatchable
                // (hosts must all be free), so an empty engine means done.
                debug_assert!(self.backlog.is_empty());
                break;
            };
            steps += 1;
            events += self.completions.len() as u64;
            digest = fnv(digest, now.to_bits());

            // Borrow dance: completions are drained into locals so the
            // handlers below can take &mut self freely.
            let mut arrival_fired = false;
            for i in 0..self.completions.len() {
                match self.completions[i] {
                    Completion::Timer(t) if Some(t.raw()) == arrival_timer => {
                        digest = fnv(digest, 1);
                        digest = fnv(digest, t.raw());
                        arrival_fired = true;
                    }
                    Completion::Timer(t) => {
                        // Per-task completion tick: pure event, no state.
                        digest = fnv(digest, 2);
                        digest = fnv(digest, t.raw());
                    }
                    Completion::Activity(a) => {
                        digest = fnv(digest, 3);
                        digest = fnv(digest, a.raw());
                        let slot = self
                            .act2job
                            .remove(&a.raw())
                            .expect("every activity belongs to a job");
                        let job = &mut self.jobs[slot as usize];
                        debug_assert!(job.live);
                        job.live = false;
                        for &h in &job.hosts {
                            debug_assert!(!self.host_free[h as usize]);
                            self.host_free[h as usize] = true;
                        }
                        free_hosts += job.hosts.len();
                        busy_committed += job.busy_host_seconds;
                        let sojourn_ms = (now - job.admit_time) * 1000.0;
                        admission.finish(sojourn_ms);
                        latency.observe(sojourn_ms);
                        completed += 1;
                        self.free_jobs.push(slot);
                    }
                }
            }

            if arrival_fired {
                arrival_timer = None;
                if events < cfg.horizon_events {
                    // The dag draw precedes the admission test so the
                    // arrival stream is invariant to shed decisions.
                    let dag = arrivals.next_dag(self.corpus.len()) as u32;
                    arrived += 1;
                    match admission.offer(self.backlog.len(), self.act2job.len()) {
                        Admission::Admitted => {
                            self.backlog.push_back(Pending {
                                dag,
                                admit_time: now,
                            });
                        }
                        Admission::Shed { retry_after_ms } => {
                            last_hint = retry_after_ms;
                            digest = fnv(digest, retry_after_ms);
                        }
                    }
                    arrival_timer = Some(
                        self.des
                            .schedule_timer(arrivals.next_delay())
                            .map_err(OnlineError::Engine)?
                            .raw(),
                    );
                }
            }

            // Dispatch everything dispatchable: moldable jobs take
            // min(free, max_width) lowest-indexed free hosts, so one free
            // host suffices and the backlog drains whenever capacity does.
            while !self.backlog.is_empty() && free_hosts > 0 {
                let pending = self.backlog.pop_front().expect("checked non-empty");
                let width = free_hosts.min(max_width) as u32;
                let (makespan, busy, n_ticks) = {
                    let plan = self.plan(cfg.algo, pending.dag, width);
                    (
                        plan.makespan,
                        plan.busy_host_seconds,
                        plan.task_finishes.len(),
                    )
                };
                let slot = match self.free_jobs.pop() {
                    Some(s) => s,
                    None => {
                        self.jobs.push(JobSlot::default());
                        (self.jobs.len() - 1) as u32
                    }
                };
                let job = &mut self.jobs[slot as usize];
                job.live = true;
                job.admit_time = pending.admit_time;
                job.busy_host_seconds = busy;
                job.hosts.clear();
                // Claim ascending host indices: resource ids were created
                // in host order, so the spec hits the solo-rate fast path.
                let mut spec = ActivitySpec::new(makespan);
                for (h, free) in self.host_free.iter_mut().enumerate() {
                    if job.hosts.len() as u32 == width {
                        break;
                    }
                    if *free {
                        *free = false;
                        job.hosts.push(h as u32);
                        spec = spec.on(self.resources[h], 1.0);
                    }
                }
                debug_assert_eq!(job.hosts.len() as u32, width);
                free_hosts -= width as usize;
                let act = self.des.start(spec).map_err(OnlineError::Engine)?;
                self.act2job.insert(act.raw(), slot);
                // Per-task completion ticks at plan-relative finishes.
                for i in 0..n_ticks {
                    let delay = self.plans[&(cfg.algo, pending.dag, width)].task_finishes[i];
                    self.des
                        .schedule_timer(delay)
                        .map_err(OnlineError::Engine)?;
                }
            }

            max_backlog = max_backlog.max(self.backlog.len());
            max_inflight = max_inflight.max(self.act2job.len());
            if steps.is_multiple_of(sample_every) {
                let fp = self.des.memory_footprint();
                hw.des_slab_slots = hw.des_slab_slots.max(fp.slab_slots);
                hw.des_timer_heap = hw.des_timer_heap.max(fp.timer_heap);
                hw.des_high_water = hw.des_high_water.max(fp.high_water());
                hw.job_slots = hw.job_slots.max(self.jobs.len());
            }
        }

        // Final exact samples (cadence-independent: the run is over).
        let fp = self.des.memory_footprint();
        hw.des_slab_slots = hw.des_slab_slots.max(fp.slab_slots);
        hw.des_timer_heap = hw.des_timer_heap.max(fp.timer_heap);
        hw.des_high_water = hw.des_high_water.max(fp.high_water());
        hw.job_slots = hw.job_slots.max(self.jobs.len());
        hw.plan_cache_entries = self.plans.len();

        let sim_seconds = self.des.now();
        let utilization = if sim_seconds > 0.0 {
            busy_committed / (self.cluster_nodes as f64 * sim_seconds)
        } else {
            0.0
        };
        digest = fnv(digest, events);
        digest = fnv(digest, completed);
        digest = fnv(digest, sim_seconds.to_bits());
        digest = fnv(digest, utilization.to_bits());
        digest = fnv(digest, latency.p99().to_bits());

        Ok(OnlineOutcome {
            run: OnlineRun {
                arrival: cfg.arrival.to_string(),
                algo: cfg.algo.name().to_string(),
                seed: cfg.seed,
                horizon_events: cfg.horizon_events,
                events,
                arrivals: arrived,
                admitted: admission.admitted(),
                shed: admission.shed(),
                last_retry_hint_ms: last_hint,
                completed,
                sim_seconds,
                utilization,
                latency_mean_ms: latency.mean(),
                latency_p50_ms: latency.p50(),
                latency_p99_ms: latency.p99(),
                latency_p999_ms: latency.p999(),
                max_backlog,
                max_inflight,
                trace_digest: digest,
            },
            high_water: hw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_dag::gen::{paper_corpus, PAPER_CORPUS_SEED};

    fn small_cfg(algo: OnlineAlgo) -> OnlineConfig {
        OnlineConfig {
            arrival: ArrivalSpec::parse("poisson@0.5").unwrap(),
            seed: 7,
            horizon_events: 20_000,
            admission_cap: 32,
            max_width: 8,
            batch: 64,
            algo,
        }
    }

    #[test]
    fn run_reaches_horizon_and_accounts_jobs() {
        let corpus: Vec<_> = paper_corpus(PAPER_CORPUS_SEED)
            .into_iter()
            .map(|g| g.dag)
            .collect();
        let mut engine = OnlineEngine::new(&corpus).unwrap();
        let out = engine.run(&small_cfg(OnlineAlgo::Hcpa)).unwrap();
        let r = &out.run;
        assert!(r.events >= r.horizon_events, "{} events", r.events);
        assert!(r.completed > 0);
        assert_eq!(r.arrivals, r.admitted + r.shed);
        // Drain invariant: everything admitted eventually completes.
        assert_eq!(r.completed, r.admitted);
        assert!(r.sim_seconds > 0.0);
        assert!(
            r.utilization > 0.0 && r.utilization <= 1.0,
            "{}",
            r.utilization
        );
        assert!(r.latency_p99_ms >= r.latency_p50_ms);
        assert!(out.high_water.plan_cache_entries > 0);
    }

    #[test]
    fn repeat_runs_are_bit_identical_and_batch_invariant() {
        let corpus: Vec<_> = paper_corpus(PAPER_CORPUS_SEED)
            .into_iter()
            .map(|g| g.dag)
            .collect();
        let mut engine = OnlineEngine::new(&corpus).unwrap();
        let mut cfg = small_cfg(OnlineAlgo::Mcpa);
        let a = engine.run(&cfg).unwrap();
        // Warm engine, same config.
        let b = engine.run(&cfg).unwrap();
        assert_eq!(format!("{:?}", a.run), format!("{:?}", b.run));
        // Cold engine.
        let mut cold = OnlineEngine::new(&corpus).unwrap();
        let c = cold.run(&cfg).unwrap();
        assert_eq!(format!("{:?}", a.run), format!("{:?}", c.run));
        // Batch size changes sampling cadence only.
        cfg.batch = 1;
        let d = cold.run(&cfg).unwrap();
        assert_eq!(format!("{:?}", a.run), format!("{:?}", d.run));
    }

    #[test]
    fn overload_sheds_with_hints() {
        let corpus: Vec<_> = paper_corpus(PAPER_CORPUS_SEED)
            .into_iter()
            .map(|g| g.dag)
            .collect();
        let mut engine = OnlineEngine::new(&corpus).unwrap();
        let cfg = OnlineConfig {
            arrival: ArrivalSpec::parse("poisson@50").unwrap(),
            seed: 3,
            horizon_events: 20_000,
            admission_cap: 8,
            max_width: 4,
            batch: 64,
            algo: OnlineAlgo::Hcpa,
        };
        let out = engine.run(&cfg).unwrap();
        assert!(out.run.shed > 0, "overload must shed");
        assert!(out.run.last_retry_hint_ms >= 50);
        assert!(out.run.max_backlog <= 8);
    }

    #[test]
    fn zero_admission_cap_completes_nothing() {
        let corpus: Vec<_> = paper_corpus(PAPER_CORPUS_SEED)
            .into_iter()
            .map(|g| g.dag)
            .collect();
        let mut engine = OnlineEngine::new(&corpus).unwrap();
        let mut cfg = small_cfg(OnlineAlgo::Cpa);
        cfg.admission_cap = 0;
        cfg.horizon_events = 1000;
        let out = engine.run(&cfg).unwrap();
        assert_eq!(out.run.admitted, 0);
        assert_eq!(out.run.completed, 0);
        assert_eq!(out.run.shed, out.run.arrivals);
    }

    #[test]
    fn memory_stays_bounded_relative_to_inflight() {
        let corpus: Vec<_> = paper_corpus(PAPER_CORPUS_SEED)
            .into_iter()
            .map(|g| g.dag)
            .collect();
        let mut engine = OnlineEngine::new(&corpus).unwrap();
        let cfg = OnlineConfig {
            arrival: ArrivalSpec::parse("mmpp@20:0.2:5:20").unwrap(),
            seed: 9,
            horizon_events: 50_000,
            admission_cap: 16,
            max_width: 4,
            batch: 1,
            algo: OnlineAlgo::Hcpa,
        };
        let out = engine.run(&cfg).unwrap();
        // 16 admitted jobs max, ≤10 task ticks each, plus one arrival
        // timer: the slab and heaps must stay in that ballpark, not grow
        // with the 50k-event horizon.
        assert!(
            out.high_water.job_slots <= 16,
            "job slab {} > admission cap",
            out.high_water.job_slots
        );
        assert!(
            out.high_water.des_high_water < 1024,
            "DES footprint {} not bounded by inflight",
            out.high_water.des_high_water
        );
    }
}
