//! Seeded stochastic arrival processes.
//!
//! Two variants, both deterministic per seed and both described by a
//! compact grammar string that round-trips through `parse`/`Display`
//! (the same discipline as `FaultPlan`/`DisturbancePlan`, so arrival
//! specs travel through CLIs and wire protocols as plain text):
//!
//! * `poisson@RATE` — homogeneous Poisson arrivals at `RATE` jobs per
//!   simulated second (exponential inter-arrival times).
//! * `mmpp@R0:R1:S0:S1` — a two-state Markov-modulated Poisson process:
//!   the process alternates between state 0 (rate `R0`, exponentially
//!   distributed sojourn with mean `S0` seconds) and state 1 (rate `R1`,
//!   mean sojourn `S1`). With `R0 ≫ R1` this produces the bursty
//!   traffic that stresses admission control far harder than a Poisson
//!   stream of the same mean rate.

use std::fmt;
use std::str::FromStr;

/// Error from [`ArrivalSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalParseError {
    /// What was wrong with the spec.
    pub reason: String,
}

impl fmt::Display for ArrivalParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad arrival spec: {}", self.reason)
    }
}

impl std::error::Error for ArrivalParseError {}

fn err(reason: impl Into<String>) -> ArrivalParseError {
    ArrivalParseError {
        reason: reason.into(),
    }
}

/// A parsed arrival-process description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Jobs per simulated second (> 0, finite).
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process.
    Mmpp {
        /// Arrival rate in state 0 (≥ 0).
        rate0: f64,
        /// Arrival rate in state 1 (≥ 0; not both zero).
        rate1: f64,
        /// Mean sojourn in state 0, seconds (> 0).
        sojourn0: f64,
        /// Mean sojourn in state 1, seconds (> 0).
        sojourn1: f64,
    },
}

impl ArrivalSpec {
    /// Parses the grammar described in the module docs.
    pub fn parse(s: &str) -> Result<Self, ArrivalParseError> {
        let s = s.trim();
        let (kind, args) = s.split_once('@').ok_or_else(|| {
            err(format!(
                "{s:?}: want KIND@ARGS (poisson@R or mmpp@R0:R1:S0:S1)"
            ))
        })?;
        let num = |x: &str, what: &str| -> Result<f64, ArrivalParseError> {
            let v: f64 = x
                .trim()
                .parse()
                .map_err(|_| err(format!("{what} {x:?} is not a number")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(err(format!("{what} {x:?} must be finite and ≥ 0")));
            }
            Ok(v)
        };
        match kind.trim() {
            "poisson" => {
                let rate = num(args, "rate")?;
                if rate <= 0.0 {
                    return Err(err("poisson rate must be > 0"));
                }
                Ok(ArrivalSpec::Poisson { rate })
            }
            "mmpp" => {
                let parts: Vec<&str> = args.split(':').collect();
                let [r0, r1, s0, s1] = parts[..] else {
                    return Err(err(format!("mmpp wants R0:R1:S0:S1, got {args:?}")));
                };
                let (rate0, rate1) = (num(r0, "rate0")?, num(r1, "rate1")?);
                let (sojourn0, sojourn1) = (num(s0, "sojourn0")?, num(s1, "sojourn1")?);
                if rate0 == 0.0 && rate1 == 0.0 {
                    return Err(err("mmpp rates must not both be zero"));
                }
                if sojourn0 <= 0.0 || sojourn1 <= 0.0 {
                    return Err(err("mmpp sojourns must be > 0"));
                }
                Ok(ArrivalSpec::Mmpp {
                    rate0,
                    rate1,
                    sojourn0,
                    sojourn1,
                })
            }
            other => Err(err(format!("unknown arrival kind {other:?}"))),
        }
    }

    /// Long-run mean arrival rate (jobs per simulated second).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate } => rate,
            ArrivalSpec::Mmpp {
                rate0,
                rate1,
                sojourn0,
                sojourn1,
            } => (rate0 * sojourn0 + rate1 * sojourn1) / (sojourn0 + sojourn1),
        }
    }
}

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ArrivalSpec::Poisson { rate } => write!(f, "poisson@{rate}"),
            ArrivalSpec::Mmpp {
                rate0,
                rate1,
                sojourn0,
                sojourn1,
            } => write!(f, "mmpp@{rate0}:{rate1}:{sojourn0}:{sojourn1}"),
        }
    }
}

impl FromStr for ArrivalSpec {
    type Err = ArrivalParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ArrivalSpec::parse(s)
    }
}

/// Deterministic splitmix64 stream — the crate's only randomness source,
/// so an arrival trace is a pure function of `(spec, seed)`.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given rate (mean `1/rate`).
    fn exp(&mut self, rate: f64) -> f64 {
        // 1 - unit() is in (0, 1], so ln never sees zero.
        -(1.0 - self.unit()).ln() / rate
    }
}

/// A running arrival process: an infinite, seeded stream of
/// inter-arrival delays.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    spec: ArrivalSpec,
    rng: SplitMix,
    /// Current MMPP state (always 0 for Poisson).
    state: u8,
    /// Simulated time left in the current MMPP state.
    sojourn_left: f64,
}

impl ArrivalProcess {
    /// A process drawing from `spec`, deterministically seeded.
    pub fn new(spec: ArrivalSpec, seed: u64) -> Self {
        let mut rng = SplitMix::new(seed ^ 0xA221_11A1_05EE_D001);
        let sojourn_left = match spec {
            ArrivalSpec::Poisson { .. } => f64::INFINITY,
            ArrivalSpec::Mmpp { sojourn0, .. } => rng.exp(1.0 / sojourn0),
        };
        ArrivalProcess {
            spec,
            rng,
            state: 0,
            sojourn_left,
        }
    }

    /// The spec this process draws from.
    pub fn spec(&self) -> ArrivalSpec {
        self.spec
    }

    /// Delay until the next arrival, in simulated seconds. Advances the
    /// process state (MMPP sojourns are consumed as simulated time
    /// passes, including across state switches with no arrival).
    pub fn next_delay(&mut self) -> f64 {
        match self.spec {
            ArrivalSpec::Poisson { rate } => self.rng.exp(rate),
            ArrivalSpec::Mmpp {
                rate0,
                rate1,
                sojourn0,
                sojourn1,
            } => {
                let mut waited = 0.0;
                loop {
                    let rate = if self.state == 0 { rate0 } else { rate1 };
                    // Candidate arrival within this state, if the state
                    // produces arrivals at all.
                    let candidate = if rate > 0.0 {
                        self.rng.exp(rate)
                    } else {
                        f64::INFINITY
                    };
                    if candidate < self.sojourn_left {
                        self.sojourn_left -= candidate;
                        return waited + candidate;
                    }
                    // Sojourn expires first: switch state and keep waiting.
                    waited += self.sojourn_left;
                    self.state ^= 1;
                    let mean = if self.state == 0 { sojourn0 } else { sojourn1 };
                    self.sojourn_left = self.rng.exp(1.0 / mean);
                }
            }
        }
    }

    /// Draws the corpus index of the next arriving job.
    pub fn next_dag(&mut self, corpus_len: usize) -> usize {
        (self.rng.next_u64() % corpus_len.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        for s in ["poisson@2.5", "mmpp@8:0.5:10:40", "mmpp@0:3:1.5:2"] {
            let spec = ArrivalSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(ArrivalSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for s in [
            "poisson",
            "poisson@",
            "poisson@0",
            "poisson@-1",
            "poisson@nan",
            "mmpp@1:2:3",
            "mmpp@0:0:1:1",
            "mmpp@1:1:0:1",
            "uniform@3",
        ] {
            assert!(ArrivalSpec::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn poisson_mean_rate_is_observed() {
        let mut p = ArrivalProcess::new(ArrivalSpec::Poisson { rate: 4.0 }, 7);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_delay()).sum();
        let observed = n as f64 / total;
        assert!(
            (observed - 4.0).abs() < 0.1,
            "observed rate {observed} vs 4.0"
        );
    }

    #[test]
    fn mmpp_mean_rate_is_observed() {
        let spec = ArrivalSpec::parse("mmpp@8:0.5:10:40").unwrap();
        let mut p = ArrivalProcess::new(spec, 11);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_delay()).sum();
        let observed = n as f64 / total;
        let mean = spec.mean_rate();
        assert!(
            (observed - mean).abs() / mean < 0.1,
            "observed rate {observed} vs mean {mean}"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let spec = ArrivalSpec::parse("mmpp@8:0.5:10:40").unwrap();
        let mut a = ArrivalProcess::new(spec, 42);
        let mut b = ArrivalProcess::new(spec, 42);
        for _ in 0..10_000 {
            assert_eq!(a.next_delay().to_bits(), b.next_delay().to_bits());
            assert_eq!(a.next_dag(54), b.next_dag(54));
        }
    }
}
