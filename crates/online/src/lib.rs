//! # mps-online — streaming online scheduling at engine speed
//!
//! The paper's pipeline is batch-shaped: fix a DAG, fix a platform, run
//! each algorithm once, compare makespans. This crate turns the same
//! machinery into a *service-shaped* workload: a seeded arrival process
//! ([`ArrivalSpec`]: Poisson or bursty two-state MMPP) draws DAG jobs
//! from the shared corpus; an [`AdmissionController`] with a bounded
//! backlog sheds overload with EMA-derived retry hints; admitted jobs
//! claim exclusive host subsets of the live cluster through memoized
//! moldable CPA/HCPA/MCPA plans and execute on the incremental DES —
//! sustained over million-event horizons at engine speed with bounded
//! memory ([`OnlineEngine`]).
//!
//! Every run is a pure function of its [`OnlineConfig`]: the
//! [`OnlineRun`] report (throughput, utilization, P²-sketched latency
//! quantiles, and an FNV digest over the full event trace) is
//! byte-identical across repeats, batch sizes, and worker counts.

#![warn(missing_docs)]

pub mod admission;
pub mod arrival;
pub mod engine;

pub use admission::{Admission, AdmissionController};
pub use arrival::{ArrivalParseError, ArrivalProcess, ArrivalSpec, SplitMix};
pub use engine::{
    OnlineAlgo, OnlineConfig, OnlineEngine, OnlineHighWater, OnlineOutcome, OnlineRun,
};

/// Errors from the streaming engine.
#[derive(Debug)]
pub enum OnlineError {
    /// A configuration value is unusable.
    Config(String),
    /// The underlying DES refused an operation.
    Engine(mps_des::EngineError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::Config(msg) => write!(f, "online config error: {msg}"),
            OnlineError::Engine(e) => write!(f, "online engine error: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<mps_des::EngineError> for OnlineError {
    fn from(e: mps_des::EngineError) -> Self {
        OnlineError::Engine(e)
    }
}
