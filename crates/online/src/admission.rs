//! Bounded-backlog admission control with typed shed decisions.
//!
//! The controller mirrors the discipline `mps-serve` applies at its
//! accept loop: a hard cap on queued-plus-inflight work, and when the
//! cap is hit the job is *shed* with a retry hint derived from an
//! exponentially-weighted moving average of recent job sojourns. The
//! hint is sized so a client that honours it finds the backlog drained
//! with high probability — `ema × (backlog + inflight + 1)`, clamped to
//! a sane [50 ms, 60 s] band.
//!
//! Everything here is deterministic and wall-clock-free: sojourns are
//! *simulated* milliseconds, so the same event trace produces the same
//! shed decisions and the same hints on every run.

/// Smoothing factor for the per-job sojourn EMA (matches mps-serve).
const EMA_ALPHA: f64 = 0.25;
/// Retry hints are clamped to this band, in simulated milliseconds.
const RETRY_MIN_MS: f64 = 50.0;
const RETRY_MAX_MS: f64 = 60_000.0;

/// Outcome of offering one arrival to the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The job may enter the backlog.
    Admitted,
    /// The backlog is full; the job is dropped with a retry hint.
    Shed {
        /// Suggested client back-off, simulated milliseconds.
        retry_after_ms: u64,
    },
}

/// Bounded-backlog admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Maximum `backlog + inflight` before arrivals are shed.
    cap: usize,
    /// EMA of completed-job sojourn (admission → completion), simulated ms.
    sojourn_ema_ms: f64,
    admitted: u64,
    shed: u64,
}

impl AdmissionController {
    /// A controller shedding beyond `cap` queued-plus-inflight jobs.
    /// `cap == 0` disables admission entirely (everything sheds).
    pub fn new(cap: usize) -> Self {
        AdmissionController {
            cap,
            sojourn_ema_ms: 0.0,
            admitted: 0,
            shed: 0,
        }
    }

    /// Offers one arrival given the current load; counts the decision.
    pub fn offer(&mut self, backlog: usize, inflight: usize) -> Admission {
        if backlog + inflight < self.cap {
            self.admitted += 1;
            Admission::Admitted
        } else {
            self.shed += 1;
            let ema = if self.sojourn_ema_ms > 0.0 {
                self.sojourn_ema_ms
            } else {
                // No completions yet: assume the band floor per queued job.
                RETRY_MIN_MS
            };
            let hint = (ema * (backlog + inflight + 1) as f64).clamp(RETRY_MIN_MS, RETRY_MAX_MS);
            Admission::Shed {
                retry_after_ms: hint.round() as u64,
            }
        }
    }

    /// Records a completed job's sojourn (admission → completion) so
    /// future shed hints track observed service times.
    pub fn finish(&mut self, sojourn_ms: f64) {
        if !sojourn_ms.is_finite() || sojourn_ms < 0.0 {
            return;
        }
        if self.sojourn_ema_ms == 0.0 {
            self.sojourn_ema_ms = sojourn_ms;
        } else {
            self.sojourn_ema_ms = EMA_ALPHA * sojourn_ms + (1.0 - EMA_ALPHA) * self.sojourn_ema_ms;
        }
    }

    /// Jobs admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Jobs shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Current sojourn EMA, simulated milliseconds (0 before any finish).
    pub fn sojourn_ema_ms(&self) -> f64 {
        self.sojourn_ema_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_under_cap_sheds_at_cap() {
        let mut ac = AdmissionController::new(4);
        assert_eq!(ac.offer(0, 0), Admission::Admitted);
        assert_eq!(ac.offer(1, 2), Admission::Admitted);
        assert!(matches!(ac.offer(2, 2), Admission::Shed { .. }));
        assert!(matches!(ac.offer(10, 0), Admission::Shed { .. }));
        assert_eq!(ac.admitted(), 2);
        assert_eq!(ac.shed(), 2);
    }

    #[test]
    fn zero_cap_sheds_everything() {
        let mut ac = AdmissionController::new(0);
        assert!(matches!(ac.offer(0, 0), Admission::Shed { .. }));
    }

    #[test]
    fn retry_hint_scales_with_load_and_clamps() {
        let mut ac = AdmissionController::new(1);
        ac.finish(100.0);
        let Admission::Shed { retry_after_ms: a } = ac.offer(1, 0) else {
            panic!("expected shed");
        };
        let Admission::Shed { retry_after_ms: b } = ac.offer(7, 0) else {
            panic!("expected shed");
        };
        assert!(
            b > a,
            "deeper backlog must yield a longer hint ({a} vs {b})"
        );
        // Enormous EMA clamps to the band ceiling.
        ac.finish(1e9);
        ac.finish(1e9);
        ac.finish(1e9);
        ac.finish(1e9);
        let Admission::Shed { retry_after_ms } = ac.offer(50, 0) else {
            panic!("expected shed");
        };
        assert_eq!(retry_after_ms, 60_000);
    }

    #[test]
    fn hint_without_history_uses_floor() {
        let mut ac = AdmissionController::new(1);
        let Admission::Shed { retry_after_ms } = ac.offer(1, 0) else {
            panic!("expected shed");
        };
        assert_eq!(retry_after_ms, 100); // 50 ms floor × (1 + 0 + 1)
    }

    #[test]
    fn ema_converges_toward_recent_sojourns() {
        let mut ac = AdmissionController::new(1);
        ac.finish(1000.0);
        for _ in 0..40 {
            ac.finish(100.0);
        }
        assert!((ac.sojourn_ema_ms() - 100.0).abs() < 1.0);
    }
}
