//! The L07 simulator: platform resources + parallel-task submission.
//!
//! Maps a [`mps_platform::Cluster`] onto DES resources (one CPU per
//! host, one resource per private-link direction, one for the backbone) and
//! turns [`PTaskSpec`]s into single fluid activities:
//!
//! * each participating host CPU is consumed with weight = that host's flop
//!   amount;
//! * each link on the route of each flow is consumed with weight = the
//!   flow's byte count (flows sharing a link contend there, reproducing
//!   SimGrid's link-contention behaviour cited in §IV);
//! * the whole task advances with a **single progress rate** — computation
//!   and communication are coupled, exactly like `Ptask_L07`;
//! * network latency is charged once, as the maximum route latency over the
//!   task's flows (plus any caller-provided extra latency).

use mps_des::{ActivityId, ActivitySpec, Completion, Engine, EngineError, ResourceId};
use mps_platform::{Cluster, HostId, LinkId};

use crate::ptask::PTaskSpec;

/// Errors raised by the L07 simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum L07Error {
    /// A task referenced a host outside the platform.
    UnknownHost(HostId),
    /// A numeric field was negative or NaN.
    InvalidNumber {
        /// Which quantity was invalid.
        context: &'static str,
    },
    /// The DES engine failed.
    Engine(EngineError),
}

impl std::fmt::Display for L07Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            L07Error::UnknownHost(h) => write!(f, "unknown host {h}"),
            L07Error::InvalidNumber { context } => write!(f, "invalid number in {context}"),
            L07Error::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for L07Error {}

impl From<EngineError> for L07Error {
    fn from(e: EngineError) -> Self {
        L07Error::Engine(e)
    }
}

/// Identifier of a submitted parallel task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PTaskId(ActivityId);

impl PTaskId {
    /// Dense raw index of this task (see [`ActivityId::raw`]): within one
    /// simulator lifetime (or between [`L07Sim::reset`] calls) ids count up
    /// from zero, so callers can use this as a direct index into per-task
    /// side tables instead of a `HashMap`.
    pub fn index(self) -> usize {
        self.0.raw() as usize
    }
}

/// A completion event: which task finished and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PTaskCompletion {
    /// The completed task.
    pub task: PTaskId,
    /// Simulated completion time (seconds).
    pub time: f64,
}

/// The parallel-task simulator.
#[derive(Debug)]
pub struct L07Sim {
    engine: Engine,
    cluster: Cluster,
    cpu: Vec<ResourceId>,
    up: Vec<ResourceId>,
    down: Vec<ResourceId>,
    backbone: ResourceId,
    /// Every engine resource in id order (`cpu`, `up`, `down`, backbone);
    /// maps the raw indices used by the dense submit scratch back to ids.
    resources: Vec<ResourceId>,
    /// Dense per-resource weight accumulator reused across submissions.
    /// Always all-zero between calls to [`L07Sim::submit`].
    weight_acc: Vec<f64>,
    /// Raw indices of the resources touched by the current submission, in
    /// first-touch order.
    touched: Vec<usize>,
    /// Reused by [`L07Sim::next_completions_into`] so steady-state stepping
    /// does not allocate.
    step_scratch: Vec<Completion>,
}

impl L07Sim {
    /// Builds a simulator over a cluster platform.
    pub fn new(cluster: Cluster) -> Self {
        let mut engine = Engine::new();
        let n = cluster.node_count();
        let cpu: Vec<ResourceId> = (0..n)
            .map(|i| engine.add_resource(cluster.host_speed(HostId(i))))
            .collect();
        let up: Vec<ResourceId> = (0..n)
            .map(|i| engine.add_resource(cluster.link_props(LinkId::Up(i)).bandwidth))
            .collect();
        let down: Vec<ResourceId> = (0..n)
            .map(|i| engine.add_resource(cluster.link_props(LinkId::Down(i)).bandwidth))
            .collect();
        let backbone = engine.add_resource(cluster.link_props(LinkId::Backbone).bandwidth);
        let resources: Vec<ResourceId> = cpu
            .iter()
            .chain(&up)
            .chain(&down)
            .copied()
            .chain(std::iter::once(backbone))
            .collect();
        let weight_acc = vec![0.0; resources.len()];
        L07Sim {
            engine,
            cluster,
            cpu,
            up,
            down,
            backbone,
            resources,
            weight_acc,
            touched: Vec::new(),
            step_scratch: Vec::new(),
        }
    }

    /// Rewinds to time zero with no tasks, keeping the platform mapping and
    /// every internal buffer allocation. Task ids restart from zero, so a
    /// reset simulator produces bit-identical results to a freshly built
    /// one — this is what lets executor slabs reuse one `L07Sim` across
    /// many runs instead of paying [`L07Sim::new`] per execution.
    pub fn reset(&mut self) {
        self.engine.reset();
        self.step_scratch.clear();
    }

    /// Enables DES trace recording.
    pub fn enable_tracing(&mut self) {
        self.engine.enable_tracing();
    }

    /// True when DES trace recording is enabled. Callers can skip building
    /// task labels entirely when it is not.
    pub fn tracing_enabled(&self) -> bool {
        self.engine.tracing_enabled()
    }

    /// Installs a divergence [`Watchdog`](mps_des::Watchdog) on the
    /// underlying engine; `None` disables it.
    pub fn set_watchdog(&mut self, watchdog: Option<mps_des::Watchdog>) {
        self.engine.set_watchdog(watchdog);
    }

    /// Enables resource-utilization metering (CPUs and links). Call before
    /// submitting tasks.
    pub fn enable_usage_metering(&mut self) {
        self.engine.enable_usage_metering();
    }

    /// Mean utilization of every host CPU over the simulated horizon
    /// (`None` unless metering was enabled).
    pub fn cpu_utilization(&self) -> Option<Vec<f64>> {
        let usage = self.engine.resource_usage()?;
        Some(
            self.cpu
                .iter()
                .map(|r| usage[r.index()].utilization())
                .collect(),
        )
    }

    /// Mean utilization of the backbone link (`None` unless metering was
    /// enabled).
    pub fn backbone_utilization(&self) -> Option<f64> {
        let usage = self.engine.resource_usage()?;
        Some(usage[self.backbone.index()].utilization())
    }

    /// The recorded trace.
    pub fn trace(&self) -> &mps_des::Trace {
        self.engine.trace()
    }

    /// The platform.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current simulated time (seconds).
    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    /// Number of unfinished tasks.
    pub fn live_tasks(&self) -> usize {
        self.engine.live_activities()
    }

    /// True when no task is pending.
    pub fn is_idle(&self) -> bool {
        self.engine.is_idle()
    }

    fn resource_of_link(&self, link: LinkId) -> ResourceId {
        match link {
            LinkId::Up(i) => self.up[i],
            LinkId::Down(i) => self.down[i],
            LinkId::Backbone => self.backbone,
        }
    }

    /// Adds `w` (> 0) to the dense weight scratch for `r`, recording the
    /// first touch so the scratch can be drained and re-zeroed cheaply.
    fn accumulate_weight(&mut self, r: ResourceId, w: f64) {
        let i = r.index();
        if self.weight_acc[i] == 0.0 {
            self.touched.push(i);
        }
        self.weight_acc[i] += w;
    }

    /// Submits a parallel task; it starts consuming resources immediately.
    pub fn submit(&mut self, spec: PTaskSpec) -> Result<PTaskId, L07Error> {
        let n = self.cluster.node_count();
        for &(h, f) in &spec.comp {
            if h.index() >= n {
                return Err(L07Error::UnknownHost(h));
            }
            if f.is_nan() || f < 0.0 {
                return Err(L07Error::InvalidNumber {
                    context: "computation amount",
                });
            }
        }
        for &(s, d, b) in &spec.flows {
            if s.index() >= n {
                return Err(L07Error::UnknownHost(s));
            }
            if d.index() >= n {
                return Err(L07Error::UnknownHost(d));
            }
            if b.is_nan() || b < 0.0 {
                return Err(L07Error::InvalidNumber {
                    context: "flow bytes",
                });
            }
        }
        if spec.extra_latency.is_nan() || spec.extra_latency < 0.0 {
            return Err(L07Error::InvalidNumber {
                context: "extra latency",
            });
        }

        // Accumulate per-resource weights: the task progresses from 0 to 1,
        // so weights are the full amounts. The dense `weight_acc` scratch
        // keyed by resource index applies the exact same sequence of `+=`
        // per resource as a map keyed by `ResourceId` would, so the sums
        // are bit-identical — only the container changed. Every contribution
        // is strictly positive (zero amounts are skipped), so a zero slot
        // means "untouched".
        debug_assert!(self.touched.is_empty());
        for &(h, f) in &spec.comp {
            if f > 0.0 {
                self.accumulate_weight(self.cpu[h.index()], f);
            }
        }
        let mut max_route_latency = 0.0_f64;
        for &(s, d, b) in &spec.flows {
            if s == d || b <= 0.0 {
                continue;
            }
            for link in self.cluster.route_links(s, d) {
                self.accumulate_weight(self.resource_of_link(link), b);
            }
            max_route_latency = max_route_latency.max(self.cluster.route_latency(s, d));
        }

        self.touched.sort_unstable();
        let mut sorted: Vec<(ResourceId, f64)> = Vec::with_capacity(self.touched.len());
        for &i in &self.touched {
            sorted.push((self.resources[i], self.weight_acc[i]));
            self.weight_acc[i] = 0.0;
        }
        self.touched.clear();

        let mut act = ActivitySpec::new(1.0)
            .with_latency(max_route_latency + spec.extra_latency)
            .with_rate_bound(spec.rate_bound);
        act.weights = sorted;
        if let Some(label) = spec.label {
            act = act.with_label(label);
        }
        let id = self.engine.start(act)?;
        Ok(PTaskId(id))
    }

    /// Advances to the next completion(s). `None` when idle.
    pub fn next_completions(&mut self) -> Result<Option<Vec<PTaskCompletion>>, L07Error> {
        let mut out = Vec::new();
        match self.next_completions_into(&mut out)? {
            true => Ok(Some(out)),
            false => Ok(None),
        }
    }

    /// Allocation-free variant of [`L07Sim::next_completions`]: fills `out`
    /// (cleared first) with the next batch of completions and returns
    /// `false` when the simulator is idle. `out` may legitimately come back
    /// empty on a `true` return if the step only fired engine timers.
    pub fn next_completions_into(
        &mut self,
        out: &mut Vec<PTaskCompletion>,
    ) -> Result<bool, L07Error> {
        out.clear();
        let mut scratch = std::mem::take(&mut self.step_scratch);
        let stepped = self.engine.step_into(&mut scratch);
        let time = self.engine.now();
        for c in &scratch {
            if let Completion::Activity(id) = c {
                out.push(PTaskCompletion {
                    task: PTaskId(*id),
                    time,
                });
            }
        }
        self.step_scratch = scratch;
        Ok(stepped?.is_some())
    }

    /// Crashes a host at the current simulated time: its CPU and both
    /// private-link directions are retired from the platform. Tasks still
    /// consuming those resources stall (typed, via the engine) unless the
    /// caller [`cancel`](L07Sim::cancel)s them — which is exactly what the
    /// disturbed executor does before re-planning.
    pub fn crash_host(&mut self, h: HostId) -> Result<(), L07Error> {
        let i = h.index();
        if i >= self.cluster.node_count() {
            return Err(L07Error::UnknownHost(h));
        }
        self.engine.retire_resource(self.cpu[i]);
        self.engine.retire_resource(self.up[i]);
        self.engine.retire_resource(self.down[i]);
        Ok(())
    }

    /// True once [`L07Sim::crash_host`] removed the host.
    pub fn host_is_crashed(&self, h: HostId) -> bool {
        self.engine.is_retired(self.cpu[h.index()])
    }

    /// Scales a host's CPU to `base_speed / factor` (`factor == 1.0`
    /// restores the exact as-built capacity). No-op on crashed hosts.
    pub fn set_host_factor(&mut self, h: HostId, factor: f64) -> Result<(), L07Error> {
        let i = h.index();
        if i >= self.cluster.node_count() {
            return Err(L07Error::UnknownHost(h));
        }
        if factor.is_nan() || factor < 1.0 {
            return Err(L07Error::InvalidNumber {
                context: "slowdown factor",
            });
        }
        let r = self.cpu[i];
        let base = self.engine.base_capacity(r);
        self.engine.set_capacity(r, base / factor)?;
        Ok(())
    }

    /// Scales both private-link directions of a host to
    /// `base_bandwidth / factor` (`factor == 1.0` restores exactly).
    /// No-op on crashed hosts.
    pub fn set_link_factor(&mut self, h: HostId, factor: f64) -> Result<(), L07Error> {
        let i = h.index();
        if i >= self.cluster.node_count() {
            return Err(L07Error::UnknownHost(h));
        }
        if factor.is_nan() || factor < 1.0 {
            return Err(L07Error::InvalidNumber {
                context: "degrade factor",
            });
        }
        for r in [self.up[i], self.down[i]] {
            let base = self.engine.base_capacity(r);
            self.engine.set_capacity(r, base / factor)?;
        }
        Ok(())
    }

    /// Cancels a live task without reporting a completion; returns `false`
    /// when it already finished or was cancelled (idempotent).
    pub fn cancel(&mut self, task: PTaskId) -> bool {
        self.engine.cancel(task.0)
    }

    /// Schedules an engine wake-up `delay` seconds from now. The matching
    /// step returns `true` from [`L07Sim::next_completions_into`] with an
    /// empty batch — the disturbed executor uses this to observe the
    /// simulator exactly at disturbance times.
    pub fn schedule_timer(&mut self, delay: f64) -> Result<(), L07Error> {
        self.engine.schedule_timer(delay)?;
        Ok(())
    }

    /// Runs a single task to completion on an otherwise idle simulator and
    /// returns its duration. Convenience for model validation.
    pub fn run_single(&mut self, spec: PTaskSpec) -> Result<f64, L07Error> {
        let start = self.now();
        let id = self.submit(spec)?;
        loop {
            match self.next_completions()? {
                None => return Err(L07Error::Engine(EngineError::Stalled { time: self.now() })),
                Some(completions) => {
                    if let Some(c) = completions.iter().find(|c| c.task == id) {
                        return Ok(c.time - start);
                    }
                }
            }
        }
    }

    /// Runs everything currently submitted to completion; returns the final
    /// simulated time.
    pub fn run_to_idle(&mut self) -> Result<f64, L07Error> {
        while self.next_completions()?.is_some() {}
        Ok(self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_platform::units::GBPS;
    use mps_platform::ClusterSpec;

    fn sim() -> L07Sim {
        L07Sim::new(Cluster::bayreuth())
    }

    fn hosts(ids: &[usize]) -> Vec<HostId> {
        ids.iter().map(|&i| HostId(i)).collect()
    }

    #[test]
    fn uniform_compute_task_time() {
        // 2·2000³ flops over 4 hosts at 250 MFlop/s: 16 s.
        let mut s = sim();
        let h = hosts(&[0, 1, 2, 3]);
        let flops = 2.0 * 2000.0_f64.powi(3) / 4.0;
        let t = s.run_single(PTaskSpec::compute_uniform(&h, flops)).unwrap();
        assert!((t - 16.0).abs() < 1e-9);
    }

    #[test]
    fn imbalanced_compute_is_limited_by_the_largest_share() {
        // L07 couples all components: the task finishes when the slowest
        // host finishes.
        let mut s = sim();
        let h = hosts(&[0, 1]);
        let t = s
            .run_single(PTaskSpec::compute(&h, &[500.0e6, 250.0e6]))
            .unwrap();
        assert!((t - 2.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn p2p_transfer_time_matches_platform_formula() {
        let mut s = sim();
        let t = s
            .run_single(PTaskSpec::p2p(HostId(0), HostId(1), 125.0e6))
            .unwrap();
        // 3 links à 100 µs + 125 MB / 125 MB/s.
        assert!((t - (3.0e-4 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn local_flow_costs_nothing() {
        let mut s = sim();
        let t = s
            .run_single(PTaskSpec::p2p(HostId(0), HostId(0), 1.0e9))
            .unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn two_transfers_contend_on_the_backbone() {
        // Different host pairs, so only the backbone is shared: each flow
        // gets half the backbone bandwidth.
        let mut s = sim();
        s.submit(PTaskSpec::p2p(HostId(0), HostId(1), 125.0e6))
            .unwrap();
        s.submit(PTaskSpec::p2p(HostId(2), HostId(3), 125.0e6))
            .unwrap();
        let t = s.run_to_idle().unwrap();
        assert!((t - (3.0e-4 + 2.0)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn wider_backbone_removes_contention() {
        let mut spec = ClusterSpec::bayreuth();
        spec.backbone_bandwidth = 10.0 * GBPS;
        let mut s = L07Sim::new(spec.build().unwrap());
        s.submit(PTaskSpec::p2p(HostId(0), HostId(1), 125.0e6))
            .unwrap();
        s.submit(PTaskSpec::p2p(HostId(2), HostId(3), 125.0e6))
            .unwrap();
        let t = s.run_to_idle().unwrap();
        assert!((t - (3.0e-4 + 1.0)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn coupled_compute_and_communication() {
        // A task that computes 250 Mflop on one host (1 s alone) and moves
        // 250 MB over the network (2 s alone at 125 MB/s): the coupled L07
        // rate is bound by the slower component → 2 s (+ latency).
        let mut s = sim();
        let mut spec = PTaskSpec::compute(&hosts(&[0]), &[250.0e6]);
        spec.flows.push((HostId(0), HostId(1), 250.0e6));
        let t = s.run_single(spec).unwrap();
        assert!((t - (3.0e-4 + 2.0)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn ring_pattern_contends_on_private_links() {
        // 2-host ring: two flows 0→1 and 1→0. Each private link direction
        // carries one flow; backbone carries both: backbone is the
        // bottleneck at 125 MB/s for 2 × B bytes.
        let mut s = sim();
        let spec = PTaskSpec::transfers(vec![
            (HostId(0), HostId(1), 125.0e6),
            (HostId(1), HostId(0), 125.0e6),
        ]);
        let t = s.run_single(spec).unwrap();
        assert!((t - (3.0e-4 + 2.0)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn extra_latency_is_charged_once() {
        let mut s = sim();
        let spec = PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6).with_extra_latency(0.7);
        let t = s.run_single(spec).unwrap();
        assert!((t - 1.7).abs() < 1e-9);
    }

    #[test]
    fn empty_task_completes_instantly() {
        let mut s = sim();
        let t = s.run_single(PTaskSpec::new()).unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn unknown_host_is_rejected() {
        let mut s = sim();
        let err = s
            .submit(PTaskSpec::compute_uniform(&hosts(&[40]), 1.0))
            .unwrap_err();
        assert_eq!(err, L07Error::UnknownHost(HostId(40)));
    }

    #[test]
    fn negative_flow_is_rejected() {
        let mut s = sim();
        let err = s
            .submit(PTaskSpec::p2p(HostId(0), HostId(1), -5.0))
            .unwrap_err();
        assert!(matches!(err, L07Error::InvalidNumber { .. }));
    }

    #[test]
    fn compute_tasks_on_same_host_share_the_cpu() {
        let mut s = sim();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        let t = s.run_to_idle().unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_tasks_on_distinct_hosts_run_concurrently() {
        let mut s = sim();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[1]), 250.0e6))
            .unwrap();
        let t = s.run_to_idle().unwrap();
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_mm_task_on_8_hosts() {
        // Full MM task with ring communication at n = 2000, p = 8:
        // compute: 2n³/8 per host = 2 Gflop → 8 s at 250 MFlop/s.
        // comm: each ring edge carries 7 · (n²/8) · 8 B = 28 MB. Each
        // private link direction carries one edge; the backbone carries all
        // eight (224 MB at 125 MB/s = 1.792 s if alone).
        // Coupled rate: CPU needs 8 s, network needs max(28/125, 224/125)
        // → CPU-bound at 8 s (+ 300 µs latency).
        let mut s = sim();
        let h = hosts(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let n = 2000.0_f64;
        let per_host = 2.0 * n.powi(3) / 8.0;
        let edge_bytes = 7.0 * (n * n / 8.0) * 8.0;
        let mut spec = PTaskSpec::compute_uniform(&h, per_host);
        for i in 0..8usize {
            spec.flows
                .push((HostId(i), HostId((i + 1) % 8), edge_bytes));
        }
        let t = s.run_single(spec).unwrap();
        assert!((t - (8.0 + 3.0e-4)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn utilization_metering_reports_busy_cpus() {
        let mut s = sim();
        s.enable_usage_metering();
        // Saturate host 0 for the whole run; host 1 stays idle.
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        s.run_to_idle().unwrap();
        let cpu = s.cpu_utilization().unwrap();
        assert!((cpu[0] - 1.0).abs() < 1e-9, "host 0 busy: {}", cpu[0]);
        assert_eq!(cpu[1], 0.0);
        assert_eq!(s.backbone_utilization().unwrap(), 0.0);
    }

    #[test]
    fn backbone_utilization_tracks_transfers() {
        let mut s = sim();
        s.enable_usage_metering();
        s.submit(PTaskSpec::p2p(HostId(0), HostId(1), 125.0e6))
            .unwrap();
        s.run_to_idle().unwrap();
        // The transfer saturates the backbone for essentially the whole
        // horizon (minus the latency phase).
        let bb = s.backbone_utilization().unwrap();
        assert!(bb > 0.99, "backbone {bb}");
    }

    #[test]
    fn reset_reproduces_bit_identical_results() {
        // One workload with coupled compute + contending flows, executed on
        // a fresh simulator and again on the same simulator after reset():
        // completion times must match to the bit, and task ids must restart.
        fn run(s: &mut L07Sim) -> Vec<(usize, u64)> {
            let h = hosts(&[0, 1, 2, 3]);
            let mut spec = PTaskSpec::compute(&h, &[4.0e8, 3.0e8, 2.0e8, 1.0e8]);
            for i in 0..4usize {
                spec.flows.push((HostId(i), HostId((i + 1) % 4), 7.0e7));
            }
            s.submit(spec).unwrap();
            s.submit(PTaskSpec::p2p(HostId(5), HostId(6), 1.25e8))
                .unwrap();
            s.submit(PTaskSpec::compute_uniform(&hosts(&[1]), 2.5e8))
                .unwrap();
            let mut out = Vec::new();
            while let Some(batch) = s.next_completions().unwrap() {
                for c in batch {
                    out.push((c.task.index(), c.time.to_bits()));
                }
            }
            out
        }
        let mut fresh = sim();
        let first = run(&mut fresh);
        assert!(!first.is_empty());
        fresh.reset();
        assert!(fresh.is_idle());
        assert_eq!(fresh.now(), 0.0);
        let second = run(&mut fresh);
        assert_eq!(first, second);
        // Ids restarted from zero, like a freshly built simulator.
        assert_eq!(second.iter().map(|&(i, _)| i).min(), Some(0));
    }

    #[test]
    fn slowing_a_host_stretches_its_compute_task() {
        // 250 Mflop at 250 MFlop/s → 1 s; halfway through, slow the host
        // 2×: the remaining 125 Mflop take 1 s more → finishes at 1.5 s.
        let mut s = sim();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        s.schedule_timer(0.5).unwrap();
        let mut out = Vec::new();
        assert!(s.next_completions_into(&mut out).unwrap());
        assert!(out.is_empty(), "timer step reports no tasks");
        s.set_host_factor(HostId(0), 2.0).unwrap();
        let t = s.run_to_idle().unwrap();
        assert!((t - 1.5).abs() < 1e-9, "t = {t}");
        // Factor 1.0 restores the exact base capacity.
        s.set_host_factor(HostId(0), 1.0).unwrap();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        let t2 = s.run_to_idle().unwrap();
        assert!((t2 - t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degrading_links_stretches_transfers() {
        // 125 MB over a degraded (2×) private link: the up/down links drop
        // to 62.5 MB/s and become the bottleneck below the backbone.
        let mut s = sim();
        s.set_link_factor(HostId(0), 2.0).unwrap();
        s.set_link_factor(HostId(1), 2.0).unwrap();
        let t = s
            .run_single(PTaskSpec::p2p(HostId(0), HostId(1), 125.0e6))
            .unwrap();
        assert!((t - (3.0e-4 + 2.0)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn crashing_a_host_stalls_its_tasks_typed_and_cancel_recovers() {
        let mut s = sim();
        let victim = s
            .submit(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        s.submit(PTaskSpec::compute_uniform(&hosts(&[1]), 125.0e6))
            .unwrap();
        s.schedule_timer(0.1).unwrap();
        let mut out = Vec::new();
        s.next_completions_into(&mut out).unwrap();
        s.crash_host(HostId(0)).unwrap();
        assert!(s.host_is_crashed(HostId(0)));
        // The survivor on host 1 still completes; afterwards the victim
        // stalls typed.
        let mut err = None;
        loop {
            match s.next_completions() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(err, Some(L07Error::Engine(EngineError::Stalled { .. }))),
            "expected typed stall, got {err:?}"
        );
        // Cancelling the stranded task unblocks the simulator.
        assert!(s.cancel(victim));
        assert!(s.is_idle());
        // And reset() revives the platform for the next run.
        s.reset();
        assert!(!s.host_is_crashed(HostId(0)));
        let t = s
            .run_single(PTaskSpec::compute_uniform(&hosts(&[0]), 250.0e6))
            .unwrap();
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn live_task_count() {
        let mut s = sim();
        assert!(s.is_idle());
        s.submit(PTaskSpec::compute_uniform(&hosts(&[0]), 1.0))
            .unwrap();
        assert_eq!(s.live_tasks(), 1);
        s.run_to_idle().unwrap();
        assert!(s.is_idle());
    }
}
