//! # mps-l07 — SimGrid-like `Ptask_L07` parallel-task simulation
//!
//! A from-scratch reimplementation of the parallel-task model the paper's
//! simulators are built on (§IV): a parallel task is a computation vector
//! (flops per host) plus a communication pattern (bytes per host pair),
//! advancing as one fluid activity whose rate is set by bottleneck max-min
//! fair sharing over host CPUs and network links — with full link
//! contention on the star-topology cluster.
//!
//! Documented deviations from SimGrid's implementation (see DESIGN.md §5.1):
//! network latency is charged once per task as the maximum route latency
//! over its flows (SimGrid folds latencies into the same linear system);
//! no TCP-effect corrections (`Ptask_L07` has none either).
//!
//! ```
//! use mps_l07::{L07Sim, PTaskSpec};
//! use mps_platform::{Cluster, HostId};
//!
//! let mut sim = L07Sim::new(Cluster::bayreuth());
//! // A 4-host data-parallel task of 4 Gflop total:
//! let hosts: Vec<HostId> = (0..4).map(HostId).collect();
//! let t = sim.run_single(PTaskSpec::compute_uniform(&hosts, 1.0e9)).unwrap();
//! assert!((t - 4.0).abs() < 1e-9); // 1 Gflop / 250 MFlop/s per host
//! ```

#![warn(missing_docs)]

pub mod ptask;
pub mod sim;

pub use ptask::PTaskSpec;
pub use sim::{L07Error, L07Sim, PTaskCompletion, PTaskId};

#[cfg(test)]
mod proptests {
    use super::*;
    use mps_platform::{Cluster, HostId};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// A uniform compute task's duration is total/(p·speed) regardless of
        /// which hosts are chosen.
        #[test]
        fn uniform_compute_duration(
            p in 1usize..32,
            offset in 0usize..32,
            gflops in 0.01f64..100.0,
        ) {
            let cluster = Cluster::bayreuth();
            let hosts: Vec<HostId> = (0..p)
                .map(|i| HostId((i + offset) % cluster.node_count()))
                .collect();
            // Distinct hosts only (duplicates double CPU weight).
            let mut dedup = hosts.clone();
            dedup.sort();
            dedup.dedup();
            prop_assume!(dedup.len() == hosts.len());

            let per_host = gflops * 1.0e9 / p as f64;
            let mut sim = L07Sim::new(cluster);
            let t = sim
                .run_single(PTaskSpec::compute_uniform(&hosts, per_host))
                .unwrap();
            let expected = per_host / 250.0e6;
            prop_assert!((t - expected).abs() <= expected * 1e-9 + 1e-12);
        }

        /// Transfer durations are monotone in payload size.
        #[test]
        fn transfer_monotone_in_bytes(a in 1.0f64..1e9, b in 1.0f64..1e9) {
            let (small, big) = if a <= b { (a, b) } else { (b, a) };
            let mut sim = L07Sim::new(Cluster::bayreuth());
            let t_small = sim.run_single(PTaskSpec::p2p(HostId(0), HostId(1), small)).unwrap();
            let mut sim = L07Sim::new(Cluster::bayreuth());
            let t_big = sim.run_single(PTaskSpec::p2p(HostId(0), HostId(1), big)).unwrap();
            prop_assert!(t_small <= t_big + 1e-12);
        }

        /// k parallel flows through the backbone take k times as long as one
        /// (per-flow fair share), when private links are not the bottleneck.
        #[test]
        fn backbone_fair_share(k in 1usize..8) {
            let bytes = 125.0e6;
            let mut sim = L07Sim::new(Cluster::bayreuth());
            for i in 0..k {
                sim.submit(PTaskSpec::p2p(HostId(2 * i), HostId(2 * i + 1), bytes))
                    .unwrap();
            }
            let t = sim.run_to_idle().unwrap();
            let expected = 3.0e-4 + k as f64 * bytes / 125.0e6;
            prop_assert!((t - expected).abs() < 1e-6, "k={} t={}", k, t);
        }
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;
    use mps_platform::{ClusterSpec, HostId};

    #[test]
    fn heterogeneous_hosts_compute_at_their_own_speeds() {
        let mut spec = ClusterSpec::bayreuth();
        spec.nodes = 2;
        let cluster = spec.with_speed_factors(vec![1.0, 2.0]).build().unwrap();
        // Same flop amount on each host: the slow host is the L07
        // bottleneck for a coupled parallel task.
        let mut sim = L07Sim::new(cluster.clone());
        let t = sim
            .run_single(PTaskSpec::compute_uniform(&[HostId(0), HostId(1)], 250.0e6))
            .unwrap();
        assert!((t - 1.0).abs() < 1e-9, "slow host bound: {t}");

        // A task on the fast host alone finishes in half the time.
        let mut sim = L07Sim::new(cluster);
        let t = sim
            .run_single(PTaskSpec::compute_uniform(&[HostId(1)], 250.0e6))
            .unwrap();
        assert!((t - 0.5).abs() < 1e-9, "fast host: {t}");
    }
}
