//! Parallel-task specifications (the `Ptask_L07` input format).
//!
//! A parallel task is described by a *computation vector* `a` (flops per
//! participating host) and a *communication pattern* (bytes exchanged
//! between host pairs) — §IV of the paper. Setting `a ≠ 0, B = 0` gives a
//! fully parallel compute task; `a = 0, B ≠ 0` a data-redistribution task;
//! both non-zero a parallel task with internal communication.

use mps_platform::HostId;

/// Specification of one parallel task for the L07 simulator.
#[derive(Debug, Clone, Default)]
pub struct PTaskSpec {
    /// Per-host computation amounts (flops). A host may appear once only.
    pub comp: Vec<(HostId, f64)>,
    /// Point-to-point flows `(src, dst, bytes)`. Flows between identical
    /// hosts are local copies and consume no network resources (they are
    /// accepted and ignored).
    pub flows: Vec<(HostId, HostId, f64)>,
    /// Additional fixed latency charged before the task progresses
    /// (models protocol overheads injected by refined simulators).
    pub extra_latency: f64,
    /// Optional rate cap on the whole task's progress (1/s of task
    /// fraction).
    pub rate_bound: f64,
    /// Trace label.
    pub label: Option<String>,
}

impl PTaskSpec {
    /// Empty task (completes immediately if submitted as-is).
    pub fn new() -> Self {
        PTaskSpec {
            rate_bound: f64::INFINITY,
            ..Default::default()
        }
    }

    /// A pure computation task: `flops[i]` on `hosts[i]`.
    pub fn compute(hosts: &[HostId], flops: &[f64]) -> Self {
        assert_eq!(hosts.len(), flops.len(), "hosts/flops length mismatch");
        let mut s = Self::new();
        s.comp = hosts.iter().copied().zip(flops.iter().copied()).collect();
        s
    }

    /// A pure computation task with a uniform per-host amount.
    pub fn compute_uniform(hosts: &[HostId], flops_per_host: f64) -> Self {
        let v = vec![flops_per_host; hosts.len()];
        Self::compute(hosts, &v)
    }

    /// A communication-only task from explicit flows.
    pub fn transfers(flows: Vec<(HostId, HostId, f64)>) -> Self {
        let mut s = Self::new();
        s.flows = flows;
        s
    }

    /// A single point-to-point transfer.
    pub fn p2p(src: HostId, dst: HostId, bytes: f64) -> Self {
        Self::transfers(vec![(src, dst, bytes)])
    }

    /// Adds an intra-task communication matrix over the given rank→host
    /// mapping: `comm[i][j]` bytes from rank `i`'s host to rank `j`'s host.
    #[must_use]
    pub fn with_comm_matrix(mut self, hosts: &[HostId], comm: &[Vec<f64>]) -> Self {
        assert_eq!(hosts.len(), comm.len(), "comm matrix row count");
        for (i, row) in comm.iter().enumerate() {
            assert_eq!(hosts.len(), row.len(), "comm matrix column count");
            for (j, &bytes) in row.iter().enumerate() {
                if bytes > 0.0 {
                    self.flows.push((hosts[i], hosts[j], bytes));
                }
            }
        }
        self
    }

    /// Adds a cross-allocation communication matrix (redistribution):
    /// `comm[i][j]` bytes from `src_hosts[i]` to `dst_hosts[j]`.
    #[must_use]
    pub fn with_redist_matrix(
        mut self,
        src_hosts: &[HostId],
        dst_hosts: &[HostId],
        comm: &[Vec<f64>],
    ) -> Self {
        assert_eq!(src_hosts.len(), comm.len(), "redist matrix row count");
        for (i, row) in comm.iter().enumerate() {
            assert_eq!(dst_hosts.len(), row.len(), "redist matrix column count");
            for (j, &bytes) in row.iter().enumerate() {
                if bytes > 0.0 {
                    self.flows.push((src_hosts[i], dst_hosts[j], bytes));
                }
            }
        }
        self
    }

    /// Builder: extra fixed latency.
    #[must_use]
    pub fn with_extra_latency(mut self, latency: f64) -> Self {
        self.extra_latency = latency;
        self
    }

    /// Builder: rate bound.
    #[must_use]
    pub fn with_rate_bound(mut self, bound: f64) -> Self {
        self.rate_bound = bound;
        self
    }

    /// Builder: trace label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Total flops across hosts.
    pub fn total_flops(&self) -> f64 {
        self.comp.iter().map(|&(_, f)| f).sum()
    }

    /// Total bytes across flows (including local ones).
    pub fn total_bytes(&self) -> f64 {
        self.flows.iter().map(|&(_, _, b)| b).sum()
    }

    /// True when the task has neither computation nor flows.
    pub fn is_empty(&self) -> bool {
        self.comp.iter().all(|&(_, f)| f <= 0.0) && self.flows.iter().all(|&(_, _, b)| b <= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_builder() {
        let hosts = [HostId(0), HostId(1)];
        let t = PTaskSpec::compute(&hosts, &[10.0, 20.0]);
        assert_eq!(t.total_flops(), 30.0);
        assert_eq!(t.total_bytes(), 0.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn uniform_compute_builder() {
        let hosts = [HostId(0), HostId(1), HostId(2)];
        let t = PTaskSpec::compute_uniform(&hosts, 5.0);
        assert_eq!(t.total_flops(), 15.0);
    }

    #[test]
    fn comm_matrix_skips_zeros() {
        let hosts = [HostId(0), HostId(1)];
        let comm = vec![vec![0.0, 8.0], vec![0.0, 0.0]];
        let t = PTaskSpec::new().with_comm_matrix(&hosts, &comm);
        assert_eq!(t.flows, vec![(HostId(0), HostId(1), 8.0)]);
    }

    #[test]
    fn redist_matrix_maps_rank_pairs() {
        let src = [HostId(0), HostId(1)];
        let dst = [HostId(2)];
        let comm = vec![vec![4.0], vec![6.0]];
        let t = PTaskSpec::new().with_redist_matrix(&src, &dst, &comm);
        assert_eq!(t.total_bytes(), 10.0);
        assert_eq!(t.flows.len(), 2);
    }

    #[test]
    fn empty_detection() {
        assert!(PTaskSpec::new().is_empty());
        let zero = PTaskSpec::compute(&[HostId(0)], &[0.0]);
        assert!(zero.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn compute_builder_validates_lengths() {
        PTaskSpec::compute(&[HostId(0)], &[1.0, 2.0]);
    }
}
