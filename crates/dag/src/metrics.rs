//! Structural and workload metrics of application DAGs.
//!
//! These quantify the properties the paper's generator parameters control:
//! potential task parallelism (width), depth, and the computation-to-
//! communication ratio mix set by the addition/multiplication ratio.

use mps_kernels::Kernel;

use crate::graph::Dag;

/// Summary metrics of one DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct DagMetrics {
    /// Task count.
    pub tasks: usize,
    /// Edge count.
    pub edges: usize,
    /// Number of precedence levels.
    pub depth: usize,
    /// Largest number of tasks in one precedence level (potential task
    /// parallelism).
    pub width: usize,
    /// Total analytic flop count over all tasks.
    pub total_flops: f64,
    /// Total bytes flowing over edges (each edge carries the producer's
    /// full output matrix).
    pub edge_bytes: f64,
    /// Number of addition tasks.
    pub additions: usize,
    /// Number of multiplication tasks.
    pub multiplications: usize,
    /// Serial time lower bound at a reference rate: critical-path flops /
    /// rate, with each task at p = 1.
    pub serial_cp_seconds: f64,
}

impl DagMetrics {
    /// Aggregate computation-to-communication ratio (flops per edge byte;
    /// infinite for edge-free DAGs).
    pub fn ccr(&self) -> f64 {
        if self.edge_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.total_flops / self.edge_bytes
        }
    }
}

/// Computes metrics; `reference_rate` (flops/s) is used for the serial
/// critical-path bound (the paper's 250 MFlop/s is the natural choice).
pub fn metrics(dag: &Dag, reference_rate: f64) -> DagMetrics {
    let levels = dag.precedence_levels();
    let depth = dag.depth();
    let width = (0..depth)
        .map(|l| levels.iter().filter(|&&x| x == l).count())
        .max()
        .unwrap_or(0);
    let total_flops: f64 = dag.tasks().iter().map(|t| t.kernel.total_flops()).sum();
    let edge_bytes: f64 = dag
        .edges()
        .iter()
        .map(|&(src, _)| dag.task(src).kernel.matrix_bytes())
        .sum();
    let additions = dag
        .tasks()
        .iter()
        .filter(|t| matches!(t.kernel, Kernel::MatAdd { .. }))
        .count();
    let serial_cp_seconds =
        dag.critical_path_length(|t| dag.task(t).kernel.total_flops() / reference_rate);
    DagMetrics {
        tasks: dag.len(),
        edges: dag.edge_count(),
        depth,
        width,
        total_flops,
        edge_bytes,
        additions,
        multiplications: dag.len() - additions,
        serial_cp_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{paper_corpus, PAPER_CORPUS_SEED};
    use crate::graph::TaskId;
    use crate::shapes::{chain, fork_join};
    use crate::Dag;

    #[test]
    fn chain_metrics() {
        let d = chain(Kernel::MatMul { n: 2000 }, 4);
        let m = metrics(&d, 250.0e6);
        assert_eq!(m.tasks, 4);
        assert_eq!(m.depth, 4);
        assert_eq!(m.width, 1);
        assert!((m.total_flops - 4.0 * 1.6e10).abs() < 1.0);
        assert!((m.edge_bytes - 3.0 * 32.0e6).abs() < 1.0);
        // Serial CP: 4 × 64 s.
        assert!((m.serial_cp_seconds - 256.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_width() {
        let d = fork_join(Kernel::MatAdd { n: 2000 }, 5);
        let m = metrics(&d, 250.0e6);
        assert_eq!(m.depth, 3);
        assert_eq!(m.width, 5);
        assert_eq!(m.additions, 7);
        assert_eq!(m.multiplications, 0);
    }

    #[test]
    fn edge_free_dag_has_infinite_ccr() {
        let d = Dag::new(vec![Kernel::MatMul { n: 500 }; 3], &[]).unwrap();
        let m = metrics(&d, 250.0e6);
        assert!(m.ccr().is_infinite());
        assert_eq!(m.width, 3);
        assert_eq!(m.depth, 1);
    }

    #[test]
    fn mixed_kernels_counted() {
        let d = Dag::new(
            vec![Kernel::MatMul { n: 2000 }, Kernel::MatAdd { n: 2000 }],
            &[(TaskId(0), TaskId(1))],
        )
        .unwrap();
        let m = metrics(&d, 250.0e6);
        assert_eq!(m.additions, 1);
        assert_eq!(m.multiplications, 1);
        assert!(m.ccr().is_finite());
    }

    #[test]
    fn corpus_metrics_are_consistent_with_parameters() {
        for g in paper_corpus(PAPER_CORPUS_SEED).iter().take(18) {
            let m = metrics(&g.dag, 250.0e6);
            assert_eq!(m.tasks, 10);
            assert_eq!(m.additions, g.params.addition_count());
            assert!(m.width >= 1 && m.width <= 10);
            assert!(m.depth >= 2);
            assert!(m.serial_cp_seconds > 0.0);
            // Higher add ratios lower total flops (additions are 8× cheaper).
            assert!(m.total_flops > 0.0);
        }
    }

    #[test]
    fn higher_add_ratio_means_less_work() {
        use crate::gen::{generate, DagGenParams};
        let mk = |ratio: f64| {
            let p = DagGenParams {
                tasks: 10,
                input_matrices: 4,
                add_ratio: ratio,
                matrix_size: 2000,
            };
            metrics(&generate(&p, 5), 250.0e6).total_flops
        };
        assert!(mk(1.0) < mk(0.5));
    }
}
