//! The paper's random DAG generator (§II-B, Table I).
//!
//! The generator works on a pool of matrices. It starts with `v` input
//! matrices (`v` is the *DAG width* parameter: 2, 4, or 8). It first picks
//! the number of entry tasks uniformly between 1 and `log₂(v)`; each entry
//! task consumes two matrices and produces a new one. Subsequent levels
//! contain between one and `log₂(#matrices so far)` tasks, each consuming
//! two already-available matrices and producing a new one, until the target
//! task count (10 in the paper) is reached.
//!
//! The addition/multiplication mix is set by the *ratio* parameter: a ratio
//! `r` over `T` tasks yields `round(r·T)` additions (the paper's example: a
//! ratio of 0.2 for 10 tasks → 2 additions, 8 multiplications). All
//! matrices in one DAG are `n × n` with `n ∈ {2000, 3000}`.
//!
//! Table I's full grid (3 widths × 3 ratios × 2 sizes × 3 samples = 54
//! DAGs) is reproduced by [`paper_corpus`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mps_kernels::Kernel;

use crate::graph::{Dag, TaskId};

/// Parameters of one generated DAG (one cell of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagGenParams {
    /// Total number of tasks (Table I: 10).
    pub tasks: usize,
    /// Number of input matrices — the DAG-width knob (Table I: 2, 4, 8).
    pub input_matrices: usize,
    /// Fraction of addition tasks (Table I: 0.5, 0.75, 1.0).
    pub add_ratio: f64,
    /// Matrix dimension (Table I: 2000, 3000).
    pub matrix_size: usize,
}

impl DagGenParams {
    /// Number of addition tasks implied by the ratio.
    pub fn addition_count(&self) -> usize {
        ((self.add_ratio * self.tasks as f64).round() as usize).min(self.tasks)
    }
}

/// A generated DAG together with its generation parameters and sample index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedDag {
    /// Generation parameters.
    pub params: DagGenParams,
    /// Sample index within the parameter cell (0-based).
    pub sample: usize,
    /// Seed this DAG was generated from.
    pub seed: u64,
    /// The DAG itself.
    pub dag: Dag,
}

impl GeneratedDag {
    /// A short, stable identifier, e.g. `w4-r0.75-n2000-s1`.
    pub fn name(&self) -> String {
        format!(
            "w{}-r{}-n{}-s{}",
            self.params.input_matrices, self.params.add_ratio, self.params.matrix_size, self.sample
        )
    }
}

/// Where a pool matrix came from.
#[derive(Debug, Clone, Copy)]
enum MatrixSource {
    /// One of the `v` external input matrices.
    Input,
    /// Produced by a task.
    Task(TaskId),
}

/// Generates one random DAG from the paper's process.
///
/// Deterministic in `(params, seed)`.
pub fn generate(params: &DagGenParams, seed: u64) -> Dag {
    assert!(params.tasks >= 1, "need at least one task");
    assert!(
        params.input_matrices >= 2,
        "need at least two input matrices"
    );
    assert!(
        (0.0..=1.0).contains(&params.add_ratio),
        "ratio must be within [0, 1]"
    );

    let mut rng = StdRng::seed_from_u64(seed);

    // Kernel mix: round(ratio·tasks) additions, shuffled over positions.
    let n = params.matrix_size;
    let adds = params.addition_count();
    let mut kernels: Vec<Kernel> = (0..params.tasks)
        .map(|i| {
            if i < adds {
                Kernel::MatAdd { n }
            } else {
                Kernel::MatMul { n }
            }
        })
        .collect();
    kernels.shuffle(&mut rng);

    let mut pool: Vec<MatrixSource> = vec![MatrixSource::Input; params.input_matrices];
    let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
    let mut created = 0usize;

    // log₂ bound helper: at least 1.
    let log2_bound = |m: usize| -> usize { (m as f64).log2().floor().max(1.0) as usize };

    // Entry level: 1..=log₂(v) tasks.
    let mut level_tasks = rng.gen_range(1..=log2_bound(params.input_matrices));

    while created < params.tasks {
        let level_count = level_tasks.min(params.tasks - created);
        // Tasks of this level consume matrices available *before* the level,
        // so the level is truly parallel (no intra-level dependencies).
        let available = pool.len();
        let mut produced_this_level = Vec::new();
        for _ in 0..level_count {
            let id = TaskId(created);
            created += 1;
            // Two distinct operand matrices from the available pool.
            let a = rng.gen_range(0..available);
            let b = if available > 1 {
                // Rejection-free distinct draw.
                let raw = rng.gen_range(0..available - 1);
                if raw >= a {
                    raw + 1
                } else {
                    raw
                }
            } else {
                a
            };
            for &operand in &[a, b] {
                if let MatrixSource::Task(producer) = pool[operand] {
                    if !edges.contains(&(producer, id)) {
                        edges.push((producer, id));
                    }
                }
            }
            produced_this_level.push(MatrixSource::Task(id));
        }
        pool.extend(produced_this_level);
        // Next level size: 1..=log₂(#matrices so far).
        level_tasks = rng.gen_range(1..=log2_bound(pool.len()));
    }

    Dag::new(kernels, &edges).expect("generator produces valid DAGs")
}

/// The base seed of the paper corpus (any fixed value works; this one is
/// pinned so results are reproducible across the whole workspace).
pub const PAPER_CORPUS_SEED: u64 = 0x5EED_2011;

/// Table I values.
pub const WIDTHS: [usize; 3] = [2, 4, 8];
/// Table I values.
pub const RATIOS: [f64; 3] = [0.5, 0.75, 1.0];
/// Table I values.
pub const MATRIX_SIZES: [usize; 2] = [2000, 3000];
/// Table I values.
pub const SAMPLES: usize = 3;
/// Table I values.
pub const TASKS_PER_DAG: usize = 10;

/// Generates the 54-DAG corpus of Table I (widths × ratios × sizes ×
/// samples), deterministically derived from `base_seed`.
pub fn paper_corpus(base_seed: u64) -> Vec<GeneratedDag> {
    let mut out = Vec::with_capacity(54);
    let mut counter = 0u64;
    for &width in &WIDTHS {
        for &ratio in &RATIOS {
            for &size in &MATRIX_SIZES {
                for sample in 0..SAMPLES {
                    let params = DagGenParams {
                        tasks: TASKS_PER_DAG,
                        input_matrices: width,
                        add_ratio: ratio,
                        matrix_size: size,
                    };
                    let seed = base_seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(counter);
                    counter += 1;
                    out.push(GeneratedDag {
                        params,
                        sample,
                        seed,
                        dag: generate(&params, seed),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(width: usize, ratio: f64, n: usize) -> DagGenParams {
        DagGenParams {
            tasks: 10,
            input_matrices: width,
            add_ratio: ratio,
            matrix_size: n,
        }
    }

    #[test]
    fn generates_requested_task_count() {
        for seed in 0..20 {
            let d = generate(&params(8, 0.5, 2000), seed);
            assert_eq!(d.len(), 10);
        }
    }

    #[test]
    fn kernel_mix_matches_ratio() {
        for (ratio, expect_adds) in [(0.5, 5usize), (0.75, 8), (1.0, 10), (0.2, 2)] {
            let d = generate(&params(4, ratio, 2000), 42);
            let adds = d
                .tasks()
                .iter()
                .filter(|t| matches!(t.kernel, Kernel::MatAdd { .. }))
                .count();
            assert_eq!(adds, expect_adds, "ratio {ratio}");
        }
    }

    #[test]
    fn paper_example_two_additions_for_ratio_0_2() {
        // "a ratio of 0.2 for 10 tasks leads to 2 additions and 8
        // multiplications"
        assert_eq!(params(4, 0.2, 2000).addition_count(), 2);
    }

    #[test]
    fn matrix_size_propagates_to_kernels() {
        let d = generate(&params(4, 0.5, 3000), 1);
        assert!(d.tasks().iter().all(|t| t.kernel.n() == 3000));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&params(8, 0.75, 2000), 7);
        let b = generate(&params(8, 0.75, 2000), 7);
        assert_eq!(a, b);
        let c = generate(&params(8, 0.75, 2000), 8);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn entry_structure_is_plausible() {
        // Note: graph-structural entry tasks (no predecessors) can outnumber
        // the first *generation level*, because a later task may draw both
        // operands from the external input matrices. The invariants are:
        // the first task is always an entry, every DAG has at least one
        // entry, and wider DAGs admit more entry tasks on average.
        let mut avg = std::collections::HashMap::new();
        for width in [2usize, 8] {
            let mut total = 0usize;
            for seed in 0..50 {
                let d = generate(&params(width, 0.5, 2000), seed);
                let entries = d.entry_tasks();
                assert!(!entries.is_empty(), "seed {seed}");
                assert!(entries.contains(&TaskId(0)), "seed {seed}");
                total += entries.len();
            }
            avg.insert(width, total);
        }
        assert!(
            avg[&8] > avg[&2],
            "wider DAGs should have more entry tasks on average: {avg:?}"
        );
    }

    #[test]
    fn corpus_has_54_dags() {
        let corpus = paper_corpus(PAPER_CORPUS_SEED);
        assert_eq!(corpus.len(), 54);
        // 27 per matrix size.
        let n2000 = corpus
            .iter()
            .filter(|g| g.params.matrix_size == 2000)
            .count();
        assert_eq!(n2000, 27);
        // Every cell has 3 samples.
        for &w in &WIDTHS {
            for &r in &RATIOS {
                for &n in &MATRIX_SIZES {
                    let cell = corpus
                        .iter()
                        .filter(|g| {
                            g.params.input_matrices == w
                                && g.params.add_ratio == r
                                && g.params.matrix_size == n
                        })
                        .count();
                    assert_eq!(cell, 3);
                }
            }
        }
    }

    #[test]
    fn corpus_is_reproducible_and_seed_sensitive() {
        let a = paper_corpus(PAPER_CORPUS_SEED);
        let b = paper_corpus(PAPER_CORPUS_SEED);
        assert_eq!(a, b);
        let c = paper_corpus(123);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_names_are_unique() {
        let corpus = paper_corpus(PAPER_CORPUS_SEED);
        let mut names: Vec<String> = corpus.iter().map(GeneratedDag::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 54);
    }

    #[test]
    fn generated_dags_are_valid_and_connected_enough() {
        for g in paper_corpus(PAPER_CORPUS_SEED) {
            assert!(g.dag.topological_order().is_some());
            assert_eq!(g.dag.len(), 10);
            // At least some structure: DAGs with zero edges would make the
            // scheduling comparison vacuous. The generator's two-operand
            // pull from a finite pool makes edges overwhelmingly likely.
            assert!(g.dag.edge_count() >= 1, "{} has no edges", g.name());
        }
    }

    #[test]
    fn deep_dags_have_multiple_levels() {
        let corpus = paper_corpus(PAPER_CORPUS_SEED);
        assert!(corpus.iter().all(|g| g.dag.depth() >= 2));
        assert!(corpus.iter().any(|g| g.dag.depth() >= 4));
    }

    #[test]
    #[should_panic(expected = "ratio must be within")]
    fn out_of_range_ratio_panics() {
        generate(&params(4, 1.5, 2000), 0);
    }
}
