//! Incrementally maintained top-/bottom-levels.
//!
//! The CPA allocation loop changes **one** task's execution time per step
//! (the task that just received more processors), yet
//! [`Dag::bottom_levels`] recomputes every level from scratch. These
//! structures keep the level arrays alive across steps and, on a
//! single-task time change, re-relax only the affected *cone*: the
//! ancestors for bottom levels, the descendants for top levels. Tasks
//! outside the cone — and cone members whose recomputed value is bitwise
//! unchanged — are never touched, so an update costs O(cone) instead of
//! O(V + E).
//!
//! Values are **bit-identical** to the from-scratch traversals: a node's
//! level is recomputed with exactly the same expression and operand order
//! as [`Dag::bottom_levels`] / [`Dag::top_levels`], and the worklist is
//! drained in (reverse) topological order so every recomputation sees
//! finalized neighbor values.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Dag, TaskId};

/// Bottom levels (`bl(t) = time(t) + max over successors of bl(s)`),
/// maintained incrementally under single-task time changes.
///
/// The struct is reusable: [`IncrementalBottomLevels::rebuild`] resets it
/// for a (possibly different) DAG, retaining its allocations.
#[derive(Debug, Default)]
pub struct IncrementalBottomLevels {
    bl: Vec<f64>,
    /// Position of each task in one fixed topological order.
    topo_pos: Vec<usize>,
    /// Worklist keyed by topological position (max-heap: successors of a
    /// queued task are always processed before it).
    heap: BinaryHeap<(usize, usize)>,
    queued: Vec<bool>,
}

impl IncrementalBottomLevels {
    /// An empty structure; call [`IncrementalBottomLevels::rebuild`]
    /// before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full recomputation for `dag` under `time` (indexed by task id).
    /// Produces exactly [`Dag::bottom_levels`].
    pub fn rebuild(&mut self, dag: &Dag, time: &[f64]) {
        let n = dag.len();
        assert_eq!(time.len(), n);
        let order = dag.topological_order().expect("validated DAG is acyclic");
        self.topo_pos.clear();
        self.topo_pos.resize(n, 0);
        for (i, &t) in order.iter().enumerate() {
            self.topo_pos[t.index()] = i;
        }
        self.bl.clear();
        self.bl.resize(n, 0.0);
        for &t in order.iter().rev() {
            self.bl[t.index()] = self.relaxed(dag, t, time);
        }
        self.heap.clear();
        self.queued.clear();
        self.queued.resize(n, false);
    }

    /// One node's value, with the same expression and operand order as the
    /// from-scratch traversal.
    #[inline]
    fn relaxed(&self, dag: &Dag, t: TaskId, time: &[f64]) -> f64 {
        let succ_max = dag
            .successors(t)
            .iter()
            .map(|s| self.bl[s.index()])
            .fold(0.0_f64, f64::max);
        time[t.index()] + succ_max
    }

    /// Re-relaxes the ancestor cone of `t` after `time[t]` changed.
    /// Propagation stops at any node whose recomputed value is bitwise
    /// unchanged (its ancestors cannot be affected).
    pub fn update(&mut self, dag: &Dag, t: TaskId, time: &[f64]) {
        debug_assert_eq!(time.len(), self.bl.len());
        self.queued[t.index()] = true;
        self.heap.push((self.topo_pos[t.index()], t.index()));
        while let Some((_, x)) = self.heap.pop() {
            self.queued[x] = false;
            let x = TaskId(x);
            let new = self.relaxed(dag, x, time);
            if new.to_bits() != self.bl[x.index()].to_bits() {
                self.bl[x.index()] = new;
                for &p in dag.predecessors(x) {
                    if !self.queued[p.index()] {
                        self.queued[p.index()] = true;
                        self.heap.push((self.topo_pos[p.index()], p.index()));
                    }
                }
            }
        }
    }

    /// The maintained levels, indexed by task id.
    pub fn values(&self) -> &[f64] {
        &self.bl
    }

    /// Critical-path length: `fold(0.0, max)` over all levels in id order,
    /// exactly like [`Dag::critical_path_length`].
    pub fn critical_path_length(&self) -> f64 {
        self.bl.iter().copied().fold(0.0, f64::max)
    }

    /// Writes the critical path into `out`, reproducing
    /// [`Dag::critical_path`] exactly — including its tie-breaks, which
    /// come from `Iterator::max_by` (the *last* maximal element wins).
    pub fn critical_path_into(&self, dag: &Dag, out: &mut Vec<TaskId>) {
        out.clear();
        let mut entry: Option<TaskId> = None;
        for t in dag.task_ids() {
            if dag.predecessors(t).is_empty() {
                entry = Some(match entry {
                    // `max_by` keeps the accumulator only when strictly
                    // greater than the new element.
                    Some(c) if self.cmp(c, t) == Ordering::Greater => c,
                    _ => t,
                });
            }
        }
        let Some(mut cur) = entry else { return };
        loop {
            out.push(cur);
            let mut next: Option<TaskId> = None;
            for &s in dag.successors(cur) {
                next = Some(match next {
                    Some(c) if self.cmp(c, s) == Ordering::Greater => c,
                    _ => s,
                });
            }
            match next {
                Some(nx) => cur = nx,
                None => break,
            }
        }
    }

    #[inline]
    fn cmp(&self, a: TaskId, b: TaskId) -> Ordering {
        self.bl[a.index()].total_cmp(&self.bl[b.index()])
    }
}

/// Top levels (`tl(t) = max over predecessors of (tl(p) + time(p))`),
/// maintained incrementally under single-task time changes. The affected
/// cone is the *descendant* side: a task's time feeds the top levels of
/// its successors.
#[derive(Debug, Default)]
pub struct IncrementalTopLevels {
    tl: Vec<f64>,
    topo_pos: Vec<usize>,
    /// Min-heap over topological position (via reversed keys): the
    /// predecessors of a queued task are always processed before it.
    heap: BinaryHeap<(std::cmp::Reverse<usize>, usize)>,
    queued: Vec<bool>,
}

impl IncrementalTopLevels {
    /// An empty structure; call [`IncrementalTopLevels::rebuild`] before
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full recomputation for `dag` under `time`; produces exactly
    /// [`Dag::top_levels`].
    pub fn rebuild(&mut self, dag: &Dag, time: &[f64]) {
        let n = dag.len();
        assert_eq!(time.len(), n);
        let order = dag.topological_order().expect("validated DAG is acyclic");
        self.topo_pos.clear();
        self.topo_pos.resize(n, 0);
        for (i, &t) in order.iter().enumerate() {
            self.topo_pos[t.index()] = i;
        }
        self.tl.clear();
        self.tl.resize(n, 0.0);
        for &t in &order {
            self.tl[t.index()] = self.relaxed(dag, t, time);
        }
        self.heap.clear();
        self.queued.clear();
        self.queued.resize(n, false);
    }

    #[inline]
    fn relaxed(&self, dag: &Dag, t: TaskId, time: &[f64]) -> f64 {
        let mut tl = 0.0_f64;
        for &p in dag.predecessors(t) {
            tl = tl.max(self.tl[p.index()] + time[p.index()]);
        }
        tl
    }

    /// Re-relaxes the descendant cone of `t` after `time[t]` changed.
    pub fn update(&mut self, dag: &Dag, t: TaskId, time: &[f64]) {
        debug_assert_eq!(time.len(), self.tl.len());
        // `time[t]` feeds the successors' levels, not `tl(t)` itself:
        // seed the worklist with the successors.
        for &s in dag.successors(t) {
            if !self.queued[s.index()] {
                self.queued[s.index()] = true;
                self.heap
                    .push((std::cmp::Reverse(self.topo_pos[s.index()]), s.index()));
            }
        }
        while let Some((_, x)) = self.heap.pop() {
            self.queued[x] = false;
            let x = TaskId(x);
            let new = self.relaxed(dag, x, time);
            if new.to_bits() != self.tl[x.index()].to_bits() {
                self.tl[x.index()] = new;
                for &s in dag.successors(x) {
                    if !self.queued[s.index()] {
                        self.queued[s.index()] = true;
                        self.heap
                            .push((std::cmp::Reverse(self.topo_pos[s.index()]), s.index()));
                    }
                }
            }
        }
    }

    /// The maintained levels, indexed by task id.
    pub fn values(&self) -> &[f64] {
        &self.tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DagGenParams};
    use crate::shapes::{chain, fork_join};
    use mps_kernels::Kernel;

    fn times(dag: &Dag, f: impl Fn(TaskId) -> f64) -> Vec<f64> {
        dag.task_ids().map(f).collect()
    }

    #[test]
    fn rebuild_matches_from_scratch() {
        let dag = fork_join(Kernel::MatMul { n: 500 }, 5);
        let time = times(&dag, |t| (t.index() + 1) as f64 * 1.5);
        let mut bl = IncrementalBottomLevels::new();
        bl.rebuild(&dag, &time);
        assert_eq!(bl.values(), &dag.bottom_levels(|t| time[t.index()])[..]);
        let mut tl = IncrementalTopLevels::new();
        tl.rebuild(&dag, &time);
        assert_eq!(tl.values(), &dag.top_levels(|t| time[t.index()])[..]);
    }

    #[test]
    fn single_change_updates_match_full_recompute() {
        for seed in 0..40u64 {
            let params = DagGenParams {
                tasks: 12,
                input_matrices: 4,
                add_ratio: 0.5,
                matrix_size: 2000,
            };
            let dag = generate(&params, seed);
            let mut time = times(&dag, |t| ((t.index() * 7 + 3) % 11) as f64 + 0.25);
            let mut bl = IncrementalBottomLevels::new();
            let mut tl = IncrementalTopLevels::new();
            bl.rebuild(&dag, &time);
            tl.rebuild(&dag, &time);
            for step in 0..12 {
                let t = TaskId((seed as usize + step * 5) % dag.len());
                time[t.index()] = (time[t.index()] * 0.75).max(0.125);
                bl.update(&dag, t, &time);
                tl.update(&dag, t, &time);
                let want_bl = dag.bottom_levels(|x| time[x.index()]);
                let want_tl = dag.top_levels(|x| time[x.index()]);
                assert_eq!(bl.values(), &want_bl[..], "bl seed {seed} step {step}");
                assert_eq!(tl.values(), &want_tl[..], "tl seed {seed} step {step}");
                assert_eq!(
                    bl.critical_path_length(),
                    dag.critical_path_length(|x| time[x.index()])
                );
            }
        }
    }

    #[test]
    fn critical_path_matches_reference_including_ties() {
        // Uniform times create heavy ties; the extraction must match
        // `Dag::critical_path`'s `max_by` (last-max) behavior exactly.
        for seed in 0..30u64 {
            let params = DagGenParams {
                tasks: 10,
                input_matrices: 8,
                add_ratio: 0.25,
                matrix_size: 2000,
            };
            let dag = generate(&params, seed);
            for unit in [true, false] {
                let time = times(&dag, |t| {
                    if unit {
                        1.0
                    } else {
                        ((t.index() * 13 + 5) % 7) as f64 + 1.0
                    }
                });
                let mut bl = IncrementalBottomLevels::new();
                bl.rebuild(&dag, &time);
                let mut got = Vec::new();
                bl.critical_path_into(&dag, &mut got);
                let want = dag.critical_path(|t| time[t.index()]);
                assert_eq!(got, want, "seed {seed} unit {unit}");
            }
        }
    }

    #[test]
    fn update_touches_only_the_cone() {
        // On a chain, changing the tail's time re-relaxes every ancestor,
        // while changing the head touches nothing else. We can't observe
        // the worklist from outside, but the values must stay exact in
        // both extremes.
        let dag = chain(Kernel::MatAdd { n: 500 }, 6);
        let mut time = vec![1.0; 6];
        let mut bl = IncrementalBottomLevels::new();
        bl.rebuild(&dag, &time);
        time[5] = 10.0;
        bl.update(&dag, TaskId(5), &time);
        assert_eq!(bl.values(), &dag.bottom_levels(|t| time[t.index()])[..]);
        time[0] = 0.5;
        bl.update(&dag, TaskId(0), &time);
        assert_eq!(bl.values(), &dag.bottom_levels(|t| time[t.index()])[..]);
        assert_eq!(bl.critical_path_length(), 14.5);
    }

    #[test]
    fn empty_dag_is_handled() {
        let dag = Dag::new(vec![], &[]).unwrap();
        let mut bl = IncrementalBottomLevels::new();
        bl.rebuild(&dag, &[]);
        assert!(bl.values().is_empty());
        assert_eq!(bl.critical_path_length(), 0.0);
        let mut path = vec![TaskId(0)];
        bl.critical_path_into(&dag, &mut path);
        assert!(path.is_empty());
    }
}
