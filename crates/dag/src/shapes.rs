//! Deterministic DAG shapes commonly used in scheduling studies.
//!
//! The paper evaluates on random DAGs (see [`gen`](crate::gen)); these
//! canonical shapes — chains, fork-joins, layered meshes, in/out trees —
//! are the standard complements for unit tests, examples and sensitivity
//! studies (§II-A cites algorithms evaluated on exactly such structures).

use mps_kernels::Kernel;

use crate::graph::{Dag, TaskId};

/// A linear chain `t0 → t1 → … → t_{len−1}`.
pub fn chain(kernel: Kernel, len: usize) -> Dag {
    assert!(len >= 1, "chain needs at least one task");
    let kernels = vec![kernel; len];
    let edges: Vec<(TaskId, TaskId)> = (1..len).map(|i| (TaskId(i - 1), TaskId(i))).collect();
    Dag::new(kernels, &edges).expect("chain is acyclic")
}

/// A fork-join: one source, `branches` parallel middle tasks, one sink.
pub fn fork_join(kernel: Kernel, branches: usize) -> Dag {
    assert!(branches >= 1, "fork-join needs at least one branch");
    let total = branches + 2;
    let kernels = vec![kernel; total];
    let sink = TaskId(branches + 1);
    let mut edges = Vec::with_capacity(2 * branches);
    for b in 1..=branches {
        edges.push((TaskId(0), TaskId(b)));
        edges.push((TaskId(b), sink));
    }
    Dag::new(kernels, &edges).expect("fork-join is acyclic")
}

/// A layered mesh: `layers` layers of `width` tasks; every task depends on
/// every task of the previous layer (the dense workflow core of many
/// linear-algebra pipelines).
pub fn layered_mesh(kernel: Kernel, layers: usize, width: usize) -> Dag {
    assert!(layers >= 1 && width >= 1);
    let kernels = vec![kernel; layers * width];
    let id = |layer: usize, w: usize| TaskId(layer * width + w);
    let mut edges = Vec::new();
    for layer in 1..layers {
        for w in 0..width {
            for pw in 0..width {
                edges.push((id(layer - 1, pw), id(layer, w)));
            }
        }
    }
    Dag::new(kernels, &edges).expect("mesh is acyclic")
}

/// A binary in-tree (reduction): `leaves` leaf tasks combining pairwise
/// down to a single root. `leaves` must be a power of two.
pub fn reduction_tree(kernel: Kernel, leaves: usize) -> Dag {
    assert!(
        leaves >= 1 && leaves.is_power_of_two(),
        "leaves must be 2^k"
    );
    // Level 0: `leaves` tasks; level i has leaves/2^i tasks.
    let mut kernels = Vec::new();
    let mut edges = Vec::new();
    let mut level_start = 0usize;
    let mut level_size = leaves;
    kernels.extend(std::iter::repeat_n(kernel, leaves));
    while level_size > 1 {
        let next_start = level_start + level_size;
        let next_size = level_size / 2;
        kernels.extend(std::iter::repeat_n(kernel, next_size));
        for i in 0..next_size {
            edges.push((TaskId(level_start + 2 * i), TaskId(next_start + i)));
            edges.push((TaskId(level_start + 2 * i + 1), TaskId(next_start + i)));
        }
        level_start = next_start;
        level_size = next_size;
    }
    Dag::new(kernels, &edges).expect("tree is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: Kernel = Kernel::MatMul { n: 500 };

    #[test]
    fn chain_shape() {
        let d = chain(K, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.depth(), 5);
        assert_eq!(d.entry_tasks().len(), 1);
        assert_eq!(d.exit_tasks().len(), 1);
    }

    #[test]
    fn chain_of_one() {
        let d = chain(K, 1);
        assert_eq!(d.len(), 1);
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn fork_join_shape() {
        let d = fork_join(K, 6);
        assert_eq!(d.len(), 8);
        assert_eq!(d.edge_count(), 12);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.entry_tasks(), vec![TaskId(0)]);
        assert_eq!(d.exit_tasks(), vec![TaskId(7)]);
    }

    #[test]
    fn layered_mesh_shape() {
        let d = layered_mesh(K, 3, 4);
        assert_eq!(d.len(), 12);
        assert_eq!(d.edge_count(), 2 * 4 * 4);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.entry_tasks().len(), 4);
        // Every non-entry task has `width` predecessors.
        for t in d.task_ids() {
            if !d.entry_tasks().contains(&t) {
                assert_eq!(d.predecessors(t).len(), 4);
            }
        }
    }

    #[test]
    fn reduction_tree_shape() {
        let d = reduction_tree(K, 8);
        // 8 + 4 + 2 + 1 = 15 tasks.
        assert_eq!(d.len(), 15);
        assert_eq!(d.edge_count(), 14);
        assert_eq!(d.depth(), 4);
        assert_eq!(d.entry_tasks().len(), 8);
        assert_eq!(d.exit_tasks().len(), 1);
        // Every internal node has exactly two predecessors.
        for t in d.task_ids() {
            let preds = d.predecessors(t).len();
            assert!(preds == 0 || preds == 2);
        }
    }

    #[test]
    fn reduction_tree_of_one_leaf() {
        let d = reduction_tree(K, 1);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "leaves must be 2^k")]
    fn reduction_tree_rejects_non_power_of_two() {
        reduction_tree(K, 6);
    }
}
