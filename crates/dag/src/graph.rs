//! Mixed-parallel application DAGs.
//!
//! An application is a directed acyclic graph of **moldable** tasks: each
//! task is a data-parallel kernel (matrix multiplication or addition) that
//! can run on any number of processors, and each edge is a data dependency —
//! the producer's output matrix must be (re)distributed to the consumer's
//! processor allocation before the consumer starts.

use serde::{Deserialize, Serialize};

use mps_kernels::Kernel;

/// Identifier of a task inside one DAG (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One task of the application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task id (equals its position in the DAG's task vector).
    pub id: TaskId,
    /// The computational kernel this task runs.
    pub kernel: Kernel,
}

/// Errors from DAG construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge referenced a task id that does not exist.
    UnknownTask(TaskId),
    /// A self-loop or cycle was found.
    Cyclic,
    /// A duplicate edge was found.
    DuplicateEdge(TaskId, TaskId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            DagError::Cyclic => write!(f, "graph contains a cycle"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated application DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    tasks: Vec<Task>,
    /// Successor lists, indexed by task.
    succs: Vec<Vec<TaskId>>,
    /// Predecessor lists, indexed by task.
    preds: Vec<Vec<TaskId>>,
}

impl Dag {
    /// Builds and validates a DAG from kernels and edges.
    pub fn new(kernels: Vec<Kernel>, edges: &[(TaskId, TaskId)]) -> Result<Self, DagError> {
        let n = kernels.len();
        let tasks = kernels
            .into_iter()
            .enumerate()
            .map(|(i, kernel)| Task {
                id: TaskId(i),
                kernel,
            })
            .collect();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a.0 >= n {
                return Err(DagError::UnknownTask(a));
            }
            if b.0 >= n {
                return Err(DagError::UnknownTask(b));
            }
            if a == b {
                return Err(DagError::Cyclic);
            }
            if succs[a.0].contains(&b) {
                return Err(DagError::DuplicateEdge(a, b));
            }
            succs[a.0].push(b);
            preds[b.0].push(a);
        }
        let dag = Dag {
            tasks,
            succs,
            preds,
        };
        // Validates acyclicity.
        dag.topological_order().ok_or(DagError::Cyclic)?;
        Ok(dag)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True for the empty DAG.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// One task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// All task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Direct successors of a task.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.0]
    }

    /// Direct predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.0]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// All edges `(src, dst)` in deterministic order.
    pub fn edges(&self) -> Vec<(TaskId, TaskId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (i, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                out.push((TaskId(i), s));
            }
        }
        out
    }

    /// Tasks without predecessors.
    pub fn entry_tasks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.preds[t.0].is_empty())
            .collect()
    }

    /// Tasks without successors.
    pub fn exit_tasks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.succs[t.0].is_empty())
            .collect()
    }

    /// Kahn topological order; `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<TaskId> = (0..n).map(TaskId).filter(|t| indeg[t.0] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            order.push(t);
            for &s in &self.succs[t.0] {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Precedence level of each task: entry tasks are level 0; every other
    /// task is one more than its deepest predecessor. (MCPA constrains
    /// allocations per level.)
    pub fn precedence_levels(&self) -> Vec<usize> {
        let order = self.topological_order().expect("validated DAG is acyclic");
        let mut level = vec![0usize; self.tasks.len()];
        for t in order {
            for &p in &self.preds[t.0] {
                level[t.0] = level[t.0].max(level[p.0] + 1);
            }
        }
        level
    }

    /// Number of distinct precedence levels.
    pub fn depth(&self) -> usize {
        self.precedence_levels()
            .iter()
            .copied()
            .max()
            .map_or(0, |d| d + 1)
    }

    /// Bottom levels under a task-duration function: `bl(t) = time(t) +
    /// max over successors of bl(s)` (edge costs excluded — the classic CPA
    /// formulation folds communication into task times or ignores it).
    pub fn bottom_levels(&self, time: impl Fn(TaskId) -> f64) -> Vec<f64> {
        let order = self.topological_order().expect("validated DAG is acyclic");
        let mut bl = vec![0.0_f64; self.tasks.len()];
        for &t in order.iter().rev() {
            let succ_max = self.succs[t.0]
                .iter()
                .map(|s| bl[s.0])
                .fold(0.0_f64, f64::max);
            bl[t.0] = time(t) + succ_max;
        }
        bl
    }

    /// Top levels: earliest start under infinite resources, i.e.
    /// `tl(t) = max over predecessors of (tl(p) + time(p))`.
    pub fn top_levels(&self, time: impl Fn(TaskId) -> f64) -> Vec<f64> {
        let order = self.topological_order().expect("validated DAG is acyclic");
        let mut tl = vec![0.0_f64; self.tasks.len()];
        for &t in &order {
            for &p in &self.preds[t.0] {
                tl[t.0] = tl[t.0].max(tl[p.0] + time(p));
            }
        }
        tl
    }

    /// Critical-path length under a duration function.
    pub fn critical_path_length(&self, time: impl Fn(TaskId) -> f64) -> f64 {
        self.bottom_levels(time).into_iter().fold(0.0, f64::max)
    }

    /// The tasks on (a) critical path, from entry to exit.
    pub fn critical_path(&self, time: impl Fn(TaskId) -> f64 + Copy) -> Vec<TaskId> {
        let bl = self.bottom_levels(time);
        let mut path = Vec::new();
        // Start at the entry task with the largest bottom level.
        let mut cur = match self
            .entry_tasks()
            .into_iter()
            .max_by(|a, b| bl[a.0].total_cmp(&bl[b.0]))
        {
            Some(t) => t,
            None => return path,
        };
        loop {
            path.push(cur);
            match self.succs[cur.0]
                .iter()
                .copied()
                .max_by(|a, b| bl[a.0].total_cmp(&bl[b.0]))
            {
                Some(next) => cur = next,
                None => break,
            }
        }
        path
    }

    /// Graphviz DOT rendering (for inspection).
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        for t in &self.tasks {
            let _ = writeln!(out, "  t{} [label=\"t{}: {}\"];", t.id.0, t.id.0, t.kernel);
        }
        for (a, b) in self.edges() {
            let _ = writeln!(out, "  t{} -> t{};", a.0, b.0);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // t0 -> t1, t0 -> t2, t1 -> t3, t2 -> t3
        let kernels = vec![
            Kernel::MatMul { n: 100 },
            Kernel::MatAdd { n: 100 },
            Kernel::MatMul { n: 100 },
            Kernel::MatAdd { n: 100 },
        ];
        Dag::new(
            kernels,
            &[
                (TaskId(0), TaskId(1)),
                (TaskId(0), TaskId(2)),
                (TaskId(1), TaskId(3)),
                (TaskId(2), TaskId(3)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_adjacency() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.successors(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(d.predecessors(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert_eq!(d.entry_tasks(), vec![TaskId(0)]);
        assert_eq!(d.exit_tasks(), vec![TaskId(3)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order().unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|t| t.0 == i).unwrap())
            .collect();
        for (a, b) in d.edges() {
            assert!(pos[a.0] < pos[b.0]);
        }
    }

    #[test]
    fn cycles_are_rejected() {
        let kernels = vec![Kernel::MatMul { n: 10 }, Kernel::MatMul { n: 10 }];
        let err = Dag::new(kernels, &[(TaskId(0), TaskId(1)), (TaskId(1), TaskId(0))]).unwrap_err();
        assert_eq!(err, DagError::Cyclic);
    }

    #[test]
    fn self_loop_is_rejected() {
        let err = Dag::new(vec![Kernel::MatMul { n: 10 }], &[(TaskId(0), TaskId(0))]).unwrap_err();
        assert_eq!(err, DagError::Cyclic);
    }

    #[test]
    fn unknown_task_is_rejected() {
        let err = Dag::new(vec![Kernel::MatMul { n: 10 }], &[(TaskId(0), TaskId(5))]).unwrap_err();
        assert_eq!(err, DagError::UnknownTask(TaskId(5)));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let kernels = vec![Kernel::MatMul { n: 10 }, Kernel::MatMul { n: 10 }];
        let err = Dag::new(kernels, &[(TaskId(0), TaskId(1)), (TaskId(0), TaskId(1))]).unwrap_err();
        assert_eq!(err, DagError::DuplicateEdge(TaskId(0), TaskId(1)));
    }

    #[test]
    fn precedence_levels_of_diamond() {
        let d = diamond();
        assert_eq!(d.precedence_levels(), vec![0, 1, 1, 2]);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn bottom_levels_with_unit_times() {
        let d = diamond();
        let bl = d.bottom_levels(|_| 1.0);
        assert_eq!(bl, vec![3.0, 2.0, 2.0, 1.0]);
        assert_eq!(d.critical_path_length(|_| 1.0), 3.0);
    }

    #[test]
    fn top_levels_with_unit_times() {
        let d = diamond();
        let tl = d.top_levels(|_| 1.0);
        assert_eq!(tl, vec![0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn critical_path_follows_heaviest_branch() {
        // t0 -> t1 (heavy) -> t3; t0 -> t2 (light) -> t3
        let d = diamond();
        let time = |t: TaskId| if t.0 == 1 { 10.0 } else { 1.0 };
        let cp = d.critical_path(time);
        assert_eq!(cp, vec![TaskId(0), TaskId(1), TaskId(3)]);
        assert_eq!(d.critical_path_length(time), 12.0);
    }

    #[test]
    fn empty_dag() {
        let d = Dag::new(vec![], &[]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.depth(), 0);
        assert_eq!(d.critical_path_length(|_| 1.0), 0.0);
        assert!(d.critical_path(|_| 1.0).is_empty());
    }

    #[test]
    fn independent_tasks_have_level_zero() {
        let kernels = vec![Kernel::MatMul { n: 10 }; 3];
        let d = Dag::new(kernels, &[]).unwrap();
        assert_eq!(d.precedence_levels(), vec![0, 0, 0]);
        assert_eq!(d.entry_tasks().len(), 3);
    }

    #[test]
    fn dot_export_mentions_every_task_and_edge() {
        let d = diamond();
        let dot = d.to_dot("g");
        for i in 0..4 {
            assert!(dot.contains(&format!("t{i} [label")));
        }
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("t2 -> t3;"));
    }

    #[test]
    fn serde_roundtrip() {
        let d = diamond();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
