//! # mps-dag — mixed-parallel application DAGs
//!
//! The application model of the paper's case study: DAGs of **moldable**
//! data-parallel tasks (matrix multiplications and additions), plus the
//! paper's random DAG generator with the Table I parameter grid.
//!
//! ```
//! use mps_dag::gen::{paper_corpus, PAPER_CORPUS_SEED};
//!
//! let corpus = paper_corpus(PAPER_CORPUS_SEED);
//! assert_eq!(corpus.len(), 54); // Table I: 54 DAG instances
//! assert!(corpus.iter().all(|g| g.dag.len() == 10));
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod graph;
pub mod levels;
pub mod metrics;
pub mod shapes;

pub use gen::{generate, paper_corpus, DagGenParams, GeneratedDag, PAPER_CORPUS_SEED};
pub use graph::{Dag, DagError, Task, TaskId};
pub use levels::{IncrementalBottomLevels, IncrementalTopLevels};
pub use metrics::{metrics, DagMetrics};
pub use shapes::{chain, fork_join, layered_mesh, reduction_tree};

#[cfg(test)]
mod proptests {
    use super::*;
    use mps_kernels::Kernel;
    use proptest::prelude::*;

    proptest! {
        /// The generator always yields a valid DAG of the requested size
        /// with the requested kernel mix, for arbitrary parameters.
        #[test]
        fn generator_invariants(
            tasks in 1usize..40,
            width_exp in 1u32..4,
            ratio in 0.0f64..1.0,
            n in prop::sample::select(vec![500usize, 2000, 3000]),
            seed in 0u64..10_000,
        ) {
            let params = DagGenParams {
                tasks,
                input_matrices: 2usize.pow(width_exp),
                add_ratio: ratio,
                matrix_size: n,
            };
            let dag = generate(&params, seed);
            prop_assert_eq!(dag.len(), tasks);
            prop_assert!(dag.topological_order().is_some());
            let adds = dag
                .tasks()
                .iter()
                .filter(|t| matches!(t.kernel, Kernel::MatAdd { .. }))
                .count();
            prop_assert_eq!(adds, params.addition_count());
            // Levels are consistent: every edge goes to a strictly deeper task.
            let levels = dag.precedence_levels();
            for (a, b) in dag.edges() {
                prop_assert!(levels[a.index()] < levels[b.index()]);
            }
        }

        /// Bottom level of any task is at least its own duration and at
        /// least the bottom level of each successor.
        #[test]
        fn bottom_level_monotonicity(seed in 0u64..500) {
            let params = DagGenParams {
                tasks: 10,
                input_matrices: 8,
                add_ratio: 0.5,
                matrix_size: 2000,
            };
            let dag = generate(&params, seed);
            let time = |t: TaskId| (t.index() + 1) as f64;
            let bl = dag.bottom_levels(time);
            for t in dag.task_ids() {
                prop_assert!(bl[t.index()] >= time(t) - 1e-12);
                for &s in dag.successors(t) {
                    prop_assert!(bl[t.index()] >= bl[s.index()] + time(t) - 1e-9);
                }
            }
        }
    }
}
