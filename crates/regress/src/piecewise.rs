//! The paper's piecewise execution-time model (§VII-A).
//!
//! "A single regression model does not suffice because overhead starts
//! dominating task execution times when p ≥ 16. Consequently, we use two
//! models: a non-linear `a·1/p + b` model for `p ≤ 16`, and a linear
//! `a·p + b` model for `p > 16`."

use crate::basis::Basis;
use crate::fit::{fit_affine, AffineModel, FitError};

/// A two-regime model split at a processor count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseModel {
    /// Model used for `p ≤ split`.
    pub low: AffineModel,
    /// Model used for `p > split`.
    pub high: AffineModel,
    /// Split point (the paper uses 16).
    pub split: f64,
}

impl PiecewiseModel {
    /// The paper's split point.
    pub const PAPER_SPLIT: f64 = 16.0;

    /// Builds from two fitted models.
    pub fn new(low: AffineModel, high: AffineModel, split: f64) -> Self {
        PiecewiseModel { low, high, split }
    }

    /// Fits the paper's piecewise model: `low_basis` over the samples with
    /// `p ≤ split`, `Identity` (linear) over the samples with `p > split`.
    ///
    /// `low_points` and `high_points` are the `(p, y)` sample sets used for
    /// the two regimes — the paper deliberately overlaps them (`p = 15`
    /// appears in both sets in Table II).
    pub fn fit(
        low_basis: Basis,
        low_points: &[(f64, f64)],
        high_points: &[(f64, f64)],
        split: f64,
    ) -> Result<Self, FitError> {
        let (lp, ly): (Vec<f64>, Vec<f64>) = low_points.iter().copied().unzip();
        let (hp, hy): (Vec<f64>, Vec<f64>) = high_points.iter().copied().unzip();
        Ok(PiecewiseModel {
            low: fit_affine(low_basis, &lp, &ly)?,
            high: fit_affine(Basis::Identity, &hp, &hy)?,
            split,
        })
    }

    /// Predicted value at `p`.
    pub fn predict(&self, p: f64) -> f64 {
        if p <= self.split {
            self.low.predict(p)
        } else {
            self.high.predict(p)
        }
    }
}

impl std::fmt::Display for PiecewiseModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p ≤ {}: {}; p > {}: {}",
            self.split, self.low, self.split, self.high
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_ii_mm_2000() -> PiecewiseModel {
        // Table II, multiplication n = 2000:
        // a·1/(2p)+b for p ≤ 16, c·p+d for p > 16,
        // (a, b, c, d) = (239.44, 3.43, 0.08, 1.93).
        PiecewiseModel::new(
            AffineModel::from_coefficients(Basis::RecipHalf, 239.44, 3.43),
            AffineModel::from_coefficients(Basis::Identity, 0.08, 1.93),
            PiecewiseModel::PAPER_SPLIT,
        )
    }

    #[test]
    fn regime_selection() {
        let m = table_ii_mm_2000();
        // p = 2 → 239.44/4 + 3.43 ≈ 63.29 s.
        assert!((m.predict(2.0) - (239.44 / 4.0 + 3.43)).abs() < 1e-9);
        // p = 16 is in the low regime (p ≤ 16).
        assert!((m.predict(16.0) - (239.44 / 32.0 + 3.43)).abs() < 1e-9);
        // p = 24 → 0.08·24 + 1.93 = 3.85 s.
        assert!((m.predict(24.0) - 3.85).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_both_regimes() {
        // Low: y = 120/p + 2; high: y = 0.5p + 1.
        let low: Vec<(f64, f64)> = [2.0, 4.0, 7.0, 15.0]
            .iter()
            .map(|&p| (p, 120.0 / p + 2.0))
            .collect();
        let high: Vec<(f64, f64)> = [15.0, 24.0, 31.0]
            .iter()
            .map(|&p| (p, 0.5 * p + 1.0))
            .collect();
        let m = PiecewiseModel::fit(Basis::Recip, &low, &high, 16.0).unwrap();
        assert!((m.low.a - 120.0).abs() < 1e-9);
        assert!((m.high.a - 0.5).abs() < 1e-9);
        assert!((m.predict(8.0) - 17.0).abs() < 1e-9);
        assert!((m.predict(20.0) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn paper_sample_points_overlap_at_15() {
        // The Table II point sets p = {2,4,7,15} and p = {15,24,31} overlap;
        // the fit API accepts that without complaint.
        let low: Vec<(f64, f64)> = [2.0, 4.0, 7.0, 15.0]
            .iter()
            .map(|&p| (p, 100.0 / p))
            .collect();
        let high: Vec<(f64, f64)> = [15.0, 24.0, 31.0]
            .iter()
            .map(|&p| (p, 0.1 * p + 5.0))
            .collect();
        assert!(PiecewiseModel::fit(Basis::Recip, &low, &high, 16.0).is_ok());
    }

    #[test]
    fn display_mentions_both_regimes() {
        let s = table_ii_mm_2000().to_string();
        assert!(s.contains("p ≤ 16"));
        assert!(s.contains("p > 16"));
    }

    #[test]
    fn fit_errors_propagate() {
        let err = PiecewiseModel::fit(Basis::Recip, &[(1.0, 1.0)], &[(2.0, 2.0)], 16.0);
        assert!(err.is_err());
    }
}
