//! Outlier handling for sparse performance profiles.
//!
//! The paper hit outliers at `p = 8` and `p = 16` (memory-hierarchy effects
//! and vanilla-1D load imbalance) and side-stepped them *manually* by
//! substituting the sample points 7 and 15 (§VII-A). It notes that "in
//! practice, one could address this problem by obtaining a larger number of
//! measurements for the regression, and/or possibly identify outliers". This
//! module implements that suggestion: studentized-residual detection plus an
//! iterative drop-worst-and-refit robust fitting loop.

use crate::basis::Basis;
use crate::fit::{fit_affine, AffineModel, FitError};

/// Indices of samples whose studentized residual exceeds `threshold`.
///
/// The residual scale is estimated from the fit itself (RMS of residuals
/// with the candidate excluded would be more rigorous; for the small sample
/// counts used in performance profiling the plain estimate is standard).
pub fn detect_outliers(
    basis: Basis,
    ps: &[f64],
    ys: &[f64],
    threshold: f64,
) -> Result<Vec<usize>, FitError> {
    let model = fit_affine(basis, ps, ys)?;
    let residuals = model.residuals(ps, ys);
    let n = residuals.len() as f64;
    let sigma = (residuals.iter().map(|r| r * r).sum::<f64>() / n).sqrt();
    if sigma == 0.0 {
        return Ok(Vec::new());
    }
    Ok(residuals
        .iter()
        .enumerate()
        .filter(|(_, r)| r.abs() / sigma > threshold)
        .map(|(i, _)| i)
        .collect())
}

/// Result of a robust fit: the model plus which samples were discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustFit {
    /// The final model, fitted on the retained samples.
    pub model: AffineModel,
    /// Indices (into the original sample vectors) that were discarded.
    pub discarded: Vec<usize>,
}

/// Iteratively discards the worst studentized-residual sample (above
/// `threshold`) and refits, keeping at least `min_samples` points.
pub fn fit_robust(
    basis: Basis,
    ps: &[f64],
    ys: &[f64],
    threshold: f64,
    min_samples: usize,
) -> Result<RobustFit, FitError> {
    let min_samples = min_samples.max(2);
    let mut keep: Vec<usize> = (0..ps.len()).collect();
    loop {
        let kp: Vec<f64> = keep.iter().map(|&i| ps[i]).collect();
        let ky: Vec<f64> = keep.iter().map(|&i| ys[i]).collect();
        let model = fit_affine(basis, &kp, &ky)?;
        if keep.len() <= min_samples {
            let discarded = discarded_from(&keep, ps.len());
            return Ok(RobustFit { model, discarded });
        }
        let residuals = model.residuals(&kp, &ky);
        let n = residuals.len() as f64;
        let sigma = (residuals.iter().map(|r| r * r).sum::<f64>() / n).sqrt();
        let worst = residuals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()));
        match worst {
            Some((local_idx, r)) if sigma > 0.0 && r.abs() / sigma > threshold => {
                keep.remove(local_idx);
            }
            _ => {
                let discarded = discarded_from(&keep, ps.len());
                return Ok(RobustFit { model, discarded });
            }
        }
    }
}

fn discarded_from(keep: &[usize], total: usize) -> Vec<usize> {
    (0..total).filter(|i| !keep.contains(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's scenario: hyperbolic data with planted outliers at
    /// p = 8 and p = 16.
    fn paper_like_samples() -> (Vec<f64>, Vec<f64>) {
        let ps = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let ys = ps
            .iter()
            .map(|&p| {
                let base = 500.0 / p + 10.0;
                if p == 8.0 || p == 16.0 {
                    base * 1.6 // planted outlier
                } else {
                    base
                }
            })
            .collect();
        (ps, ys)
    }

    #[test]
    fn detects_planted_outliers() {
        let (ps, ys) = paper_like_samples();
        let out = detect_outliers(Basis::Recip, &ps, &ys, 1.0).unwrap();
        // p = 8 and p = 16 are at indices 3 and 4. The biased fit smears
        // residual onto the clean points too, so we only require that the
        // planted outliers are flagged — and that the single worst point is
        // one of them.
        assert!(out.contains(&3), "flagged {out:?}");
        let model = fit_affine(Basis::Recip, &ps, &ys).unwrap();
        let residuals = model.residuals(&ps, &ys);
        let worst = residuals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        assert!(worst == 3 || worst == 4, "worst residual at {worst}");
    }

    #[test]
    fn clean_data_has_no_outliers() {
        let ps = vec![1.0, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = ps.iter().map(|&p| 100.0 / p + 1.0).collect();
        let out = detect_outliers(Basis::Recip, &ps, &ys, 2.0).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn robust_fit_recovers_true_model() {
        let (ps, ys) = paper_like_samples();
        // Plain fit is badly biased:
        let plain = fit_affine(Basis::Recip, &ps, &ys).unwrap();
        // Robust fit discards the planted outliers and lands close to
        // (500, 10).
        let robust = fit_robust(Basis::Recip, &ps, &ys, 1.0, 3).unwrap();
        assert!(
            (robust.model.a - 500.0).abs() < 30.0,
            "a = {}",
            robust.model.a
        );
        assert!(
            (robust.model.a - 500.0).abs() < (plain.a - 500.0).abs(),
            "robust ({}) must beat plain ({})",
            robust.model.a,
            plain.a
        );
        assert!(!robust.discarded.is_empty());
        assert!(robust.discarded.iter().all(|&i| i == 3 || i == 4));
    }

    #[test]
    fn robust_fit_keeps_minimum_samples() {
        let (ps, ys) = paper_like_samples();
        let robust = fit_robust(Basis::Recip, &ps, &ys, 0.1, 4).unwrap();
        assert!(ps.len() - robust.discarded.len() >= 4);
    }

    #[test]
    fn robust_fit_on_clean_data_discards_nothing() {
        let ps = vec![1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = ps.iter().map(|&p| 10.0 * p + 2.0).collect();
        let robust = fit_robust(Basis::Identity, &ps, &ys, 2.0, 2).unwrap();
        assert!(robust.discarded.is_empty());
        assert!((robust.model.a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_point_substitution_strategy_works() {
        // The paper's manual workaround: replace the outlier points 8 and 16
        // with 7 and 15. Simulate measuring at the substituted points.
        let truth = |p: f64| 537.91 / p - 25.55;
        let ps = vec![2.0, 4.0, 7.0, 15.0];
        let ys: Vec<f64> = ps.iter().map(|&p| truth(p)).collect();
        let m = fit_affine(Basis::Recip, &ps, &ys).unwrap();
        assert!((m.a - 537.91).abs() < 1e-6);
        assert!((m.b + 25.55).abs() < 1e-6);
    }

    #[test]
    fn errors_propagate() {
        assert!(detect_outliers(Basis::Recip, &[1.0], &[1.0], 2.0).is_err());
        assert!(fit_robust(Basis::Recip, &[1.0], &[1.0], 2.0, 2).is_err());
    }
}
