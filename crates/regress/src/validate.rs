//! Fit validation: leave-one-out cross-validation for sparse performance
//! models.
//!
//! §VII notes that "for larger clusters one would likely need to perform
//! more measurements in order to derive a robust model" (citing its ref. 16's
//! 15–20 samples). LOO-CV quantifies exactly that: how well does the model
//! predict a *held-out* measurement? It is the honest error estimate for
//! sparse fits, where in-sample RMSE is overly optimistic.

use crate::basis::Basis;
use crate::fit::{fit_affine, FitError};

/// Leave-one-out cross-validation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LooCv {
    /// Per-sample held-out absolute prediction errors.
    pub abs_errors: Vec<f64>,
    /// Root of the mean squared held-out error.
    pub rmse: f64,
    /// Mean absolute relative held-out error (errors normalized by the
    /// held-out value).
    pub mean_rel_error: f64,
}

/// Runs LOO-CV for an affine model `y = a·f(p) + b` over `(ps, ys)`.
///
/// Needs at least three samples (two to fit, one to hold out).
pub fn loo_cv(basis: Basis, ps: &[f64], ys: &[f64]) -> Result<LooCv, FitError> {
    if ps.len() != ys.len() || ps.len() < 3 {
        return Err(FitError::NotEnoughData);
    }
    let n = ps.len();
    let mut abs_errors = Vec::with_capacity(n);
    let mut sq_sum = 0.0;
    let mut rel_sum = 0.0;
    for hold in 0..n {
        let (tp, ty): (Vec<f64>, Vec<f64>) = (0..n)
            .filter(|&i| i != hold)
            .map(|i| (ps[i], ys[i]))
            .unzip();
        let model = fit_affine(basis, &tp, &ty)?;
        let err = (model.predict(ps[hold]) - ys[hold]).abs();
        abs_errors.push(err);
        sq_sum += err * err;
        rel_sum += if ys[hold] != 0.0 {
            err / ys[hold].abs()
        } else {
            0.0
        };
    }
    Ok(LooCv {
        rmse: (sq_sum / n as f64).sqrt(),
        mean_rel_error: rel_sum / n as f64,
        abs_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_data_has_zero_cv_error() {
        let ps = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = ps.iter().map(|&p| 100.0 / p + 2.0).collect();
        let cv = loo_cv(Basis::Recip, &ps, &ys).unwrap();
        assert!(cv.rmse < 1e-9);
        assert!(cv.mean_rel_error < 1e-12);
        assert_eq!(cv.abs_errors.len(), 5);
    }

    #[test]
    fn outlier_dominates_cv_error() {
        let ps = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut ys: Vec<f64> = ps.iter().map(|&p| 100.0 / p + 2.0).collect();
        ys[3] *= 1.5; // outlier at p = 8
        let cv = loo_cv(Basis::Recip, &ps, &ys).unwrap();
        let worst = cv
            .abs_errors
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(worst, 3, "held-out error peaks at the outlier");
        assert!(cv.mean_rel_error > 0.01);
    }

    #[test]
    fn cv_error_shrinks_with_more_samples() {
        // Same noisy generator, 4 vs 12 samples: more data → better
        // held-out predictions (the paper's [16] observation).
        let noisy = |p: f64, i: u64| {
            let jitter = 1.0 + 0.08 * (((i * 2654435761) % 100) as f64 / 100.0 - 0.5);
            (200.0 / p + 5.0) * jitter
        };
        let few: Vec<(f64, f64)> = (1..=4)
            .map(|i| (i as f64 * 4.0, noisy(i as f64 * 4.0, i)))
            .collect();
        let many: Vec<(f64, f64)> = (1..=12)
            .map(|i| (i as f64 * 2.0, noisy(i as f64 * 2.0, i)))
            .collect();
        let (fp, fy): (Vec<f64>, Vec<f64>) = few.into_iter().unzip();
        let (mp, my): (Vec<f64>, Vec<f64>) = many.into_iter().unzip();
        let cv_few = loo_cv(Basis::Recip, &fp, &fy).unwrap();
        let cv_many = loo_cv(Basis::Recip, &mp, &my).unwrap();
        assert!(
            cv_many.mean_rel_error <= cv_few.mean_rel_error * 1.5,
            "few {} vs many {}",
            cv_few.mean_rel_error,
            cv_many.mean_rel_error
        );
    }

    #[test]
    fn too_few_samples_error() {
        assert_eq!(
            loo_cv(Basis::Recip, &[1.0, 2.0], &[1.0, 2.0]).unwrap_err(),
            FitError::NotEnoughData
        );
    }
}
