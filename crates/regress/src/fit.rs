//! Closed-form least-squares fitting for `y = a·f(p) + b`.

use crate::basis::Basis;

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two samples, or mismatched input lengths.
    NotEnoughData,
    /// All transformed regressor values are identical — `a` is unidentifiable.
    DegenerateRegressor,
    /// A sample value was NaN or infinite.
    NonFiniteSample,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughData => write!(f, "need at least two (p, y) samples"),
            FitError::DegenerateRegressor => {
                write!(f, "regressor values are constant; slope unidentifiable")
            }
            FitError::NonFiniteSample => write!(f, "samples must be finite"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted affine model `y = a·f(p) + b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineModel {
    /// Basis function.
    pub basis: Basis,
    /// Slope coefficient.
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl AffineModel {
    /// Constructs a model from known coefficients (e.g. Table II).
    pub fn from_coefficients(basis: Basis, a: f64, b: f64) -> Self {
        AffineModel { basis, a, b }
    }

    /// Predicted value at processor count `p`.
    pub fn predict(&self, p: f64) -> f64 {
        self.a * self.basis.eval(p) + self.b
    }

    /// Fit statistics against a data set.
    pub fn stats(&self, ps: &[f64], ys: &[f64]) -> FitStats {
        assert_eq!(ps.len(), ys.len());
        let n = ys.len() as f64;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        let mut max_abs = 0.0_f64;
        for (&p, &y) in ps.iter().zip(ys) {
            let r = y - self.predict(p);
            ss_res += r * r;
            ss_tot += (y - mean_y) * (y - mean_y);
            max_abs = max_abs.max(r.abs());
        }
        FitStats {
            r2: if ss_tot > 0.0 {
                1.0 - ss_res / ss_tot
            } else {
                1.0
            },
            rmse: (ss_res / n).sqrt(),
            max_abs_residual: max_abs,
        }
    }

    /// Residuals `y_i − ŷ_i`.
    pub fn residuals(&self, ps: &[f64], ys: &[f64]) -> Vec<f64> {
        ps.iter()
            .zip(ys)
            .map(|(&p, &y)| y - self.predict(p))
            .collect()
    }
}

impl std::fmt::Display for AffineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} with (a, b) = ({:.4}, {:.4})",
            self.basis.formula(),
            self.a,
            self.b
        )
    }
}

/// Goodness-of-fit summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitStats {
    /// Coefficient of determination.
    pub r2: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Largest absolute residual.
    pub max_abs_residual: f64,
}

/// Least-squares fit of `y = a·f(p) + b` over `(ps, ys)` samples.
pub fn fit_affine(basis: Basis, ps: &[f64], ys: &[f64]) -> Result<AffineModel, FitError> {
    if ps.len() != ys.len() || ps.len() < 2 {
        return Err(FitError::NotEnoughData);
    }
    if ps.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteSample);
    }
    let xs: Vec<f64> = ps.iter().map(|&p| basis.eval(p)).collect();
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(FitError::NonFiniteSample);
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx <= 0.0 {
        return Err(FitError::DegenerateRegressor);
    }
    let a = sxy / sxx;
    let b = mean_y - a * mean_x;
    Ok(AffineModel { basis, a, b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_data_exactly() {
        let ps = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0]; // y = 2p + 1
        let m = fit_affine(Basis::Identity, &ps, &ys).unwrap();
        assert!((m.a - 2.0).abs() < 1e-12);
        assert!((m.b - 1.0).abs() < 1e-12);
        assert!((m.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn fits_hyperbolic_data_exactly() {
        let ps = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = ps.iter().map(|&p| 100.0 / p + 3.0).collect();
        let m = fit_affine(Basis::Recip, &ps, &ys).unwrap();
        assert!((m.a - 100.0).abs() < 1e-9);
        assert!((m.b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recip_half_doubles_the_slope() {
        let ps = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = ps.iter().map(|&p| 100.0 / p + 3.0).collect();
        let m = fit_affine(Basis::RecipHalf, &ps, &ys).unwrap();
        assert!((m.a - 200.0).abs() < 1e-9);
        assert!((m.b - 3.0).abs() < 1e-9);
        // Predictions are identical to the Recip fit.
        assert!((m.predict(16.0) - (100.0 / 16.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_minimizes_squares() {
        // Perturb two points symmetrically: the fit should pass between.
        let ps = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.5, 4.5, 7.5, 8.5]; // around y = 2p + 1
        let m = fit_affine(Basis::Identity, &ps, &ys).unwrap();
        let stats = m.stats(&ps, &ys);
        assert!(stats.r2 > 0.9);
        assert!(stats.rmse > 0.0);
        // Any slope/intercept tweak increases squared error.
        let base: f64 = m.residuals(&ps, &ys).iter().map(|r| r * r).sum();
        for (da, db) in [(0.01, 0.0), (-0.01, 0.0), (0.0, 0.01), (0.0, -0.01)] {
            let alt = AffineModel::from_coefficients(Basis::Identity, m.a + da, m.b + db);
            let alt_err: f64 = alt.residuals(&ps, &ys).iter().map(|r| r * r).sum();
            assert!(alt_err >= base);
        }
    }

    #[test]
    fn too_few_samples_error() {
        assert_eq!(
            fit_affine(Basis::Recip, &[1.0], &[1.0]).unwrap_err(),
            FitError::NotEnoughData
        );
        assert_eq!(
            fit_affine(Basis::Recip, &[1.0, 2.0], &[1.0]).unwrap_err(),
            FitError::NotEnoughData
        );
    }

    #[test]
    fn degenerate_regressor_error() {
        assert_eq!(
            fit_affine(Basis::Identity, &[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            FitError::DegenerateRegressor
        );
    }

    #[test]
    fn non_finite_samples_error() {
        assert_eq!(
            fit_affine(Basis::Identity, &[1.0, f64::NAN], &[1.0, 2.0]).unwrap_err(),
            FitError::NonFiniteSample
        );
        // 1/0 is infinite after the basis transform.
        assert_eq!(
            fit_affine(Basis::Recip, &[0.0, 2.0], &[1.0, 2.0]).unwrap_err(),
            FitError::NonFiniteSample
        );
    }

    #[test]
    fn table_ii_startup_model_predictions() {
        // Table II: task startup time = a·p + b with (a, b) = (0.03, 0.65).
        let m = AffineModel::from_coefficients(Basis::Identity, 0.03, 0.65);
        assert!((m.predict(1.0) - 0.68).abs() < 1e-12);
        assert!((m.predict(32.0) - 1.61).abs() < 1e-12);
    }

    #[test]
    fn display_formats_coefficients() {
        let m = AffineModel::from_coefficients(Basis::Recip, 537.91, -25.55);
        let s = m.to_string();
        assert!(s.contains("a·1/p + b"));
        assert!(s.contains("537.9"));
    }
}
