//! Basis functions for one-regressor affine models `y = a·f(p) + b`.

/// The regressor transform `f(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Basis {
    /// `f(p) = 1/p` — hyperbolic speedup model (Table II: additions,
    /// multiplication at `n = 3000`, small `p`).
    Recip,
    /// `f(p) = 1/(2p)` — the paper's parameterization for multiplication at
    /// `n = 2000`. Equivalent to [`Basis::Recip`] with `a` doubled; kept so
    /// Table II prints in the paper's exact form.
    RecipHalf,
    /// `f(p) = p` — linear overhead model (large `p`, startup and
    /// redistribution overheads).
    Identity,
}

impl Basis {
    /// Evaluates `f(p)`.
    pub fn eval(self, p: f64) -> f64 {
        match self {
            Basis::Recip => 1.0 / p,
            Basis::RecipHalf => 1.0 / (2.0 * p),
            Basis::Identity => p,
        }
    }

    /// Human-readable formula with placeholders, e.g. `a·1/p + b`.
    pub fn formula(self) -> &'static str {
        match self {
            Basis::Recip => "a·1/p + b",
            Basis::RecipHalf => "a·1/(2p) + b",
            Basis::Identity => "a·p + b",
        }
    }
}

impl std::fmt::Display for Basis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.formula())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluations() {
        assert_eq!(Basis::Recip.eval(4.0), 0.25);
        assert_eq!(Basis::RecipHalf.eval(4.0), 0.125);
        assert_eq!(Basis::Identity.eval(4.0), 4.0);
    }

    #[test]
    fn recip_half_is_half_of_recip() {
        for p in [1.0, 2.0, 7.5, 32.0] {
            assert!((Basis::RecipHalf.eval(p) - Basis::Recip.eval(p) / 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn formulas() {
        assert_eq!(Basis::Recip.to_string(), "a·1/p + b");
        assert_eq!(Basis::Identity.to_string(), "a·p + b");
    }
}
