//! # mps-regress — regression models for empirical performance modelling
//!
//! The paper's third simulator replaces brute-force profiles with *empirical
//! models*: two-parameter regressions of task execution time against the
//! processor count (§VII, Table II):
//!
//! * `a · 1/p + b` (hyperbolic — parallel work plus fixed overhead) for
//!   small allocations, where the paper also uses the equivalent
//!   `a · 1/(2p) + b` parameterization for `n = 2000`;
//! * `a · p + b` (linear — overhead-dominated) for large allocations;
//! * a **piecewise** combination split at `p = 16`;
//! * plain `a · p + b` fits for the startup and redistribution overheads.
//!
//! This crate provides closed-form least-squares fitting for any model of
//! the form `y = a·f(p) + b`, the piecewise composition, fit-quality
//! statistics, and outlier detection (the paper side-steps its outliers at
//! `p = 8, 16` by substituting the sample points 7 and 15; we provide both
//! that workaround and an automatic studentized-residual detector).

#![warn(missing_docs)]

pub mod basis;
pub mod fit;
pub mod outlier;
pub mod piecewise;
pub mod validate;

pub use basis::Basis;
pub use fit::{fit_affine, AffineModel, FitError, FitStats};
pub use outlier::{detect_outliers, fit_robust, RobustFit};
pub use piecewise::PiecewiseModel;
pub use validate::{loo_cv, LooCv};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fitting noise-free data generated from an affine model recovers
        /// the coefficients (for any basis).
        #[test]
        fn exact_recovery(
            a in -100.0f64..100.0,
            b in -100.0f64..100.0,
            basis in prop::sample::select(vec![Basis::Recip, Basis::RecipHalf, Basis::Identity]),
        ) {
            let ps: Vec<f64> = vec![1.0, 2.0, 4.0, 7.0, 15.0, 24.0, 31.0];
            let ys: Vec<f64> = ps.iter().map(|&p| a * basis.eval(p) + b).collect();
            let m = fit_affine(basis, &ps, &ys).unwrap();
            prop_assert!((m.a - a).abs() < 1e-6 * (1.0 + a.abs()));
            prop_assert!((m.b - b).abs() < 1e-6 * (1.0 + b.abs()));
        }

        /// R² of a perfect fit is 1 (when the data is not constant).
        #[test]
        fn r2_of_perfect_fit(
            a in 0.1f64..100.0,
            b in -10.0f64..10.0,
        ) {
            let ps: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0];
            let ys: Vec<f64> = ps.iter().map(|&p| a / p + b).collect();
            let m = fit_affine(Basis::Recip, &ps, &ys).unwrap();
            let stats = m.stats(&ps, &ys);
            prop_assert!(stats.r2 > 1.0 - 1e-9);
            prop_assert!(stats.rmse < 1e-6);
        }

        /// Residuals of a least-squares fit sum to ~zero.
        #[test]
        fn residuals_sum_to_zero(
            ys in proptest::collection::vec(0.1f64..1000.0, 3..12),
        ) {
            let ps: Vec<f64> = (1..=ys.len()).map(|i| i as f64).collect();
            let m = fit_affine(Basis::Identity, &ps, &ys).unwrap();
            let sum: f64 = ps
                .iter()
                .zip(&ys)
                .map(|(&p, &y)| y - m.predict(p))
                .sum();
            prop_assert!(sum.abs() < 1e-6 * ys.iter().sum::<f64>().max(1.0));
        }
    }
}
